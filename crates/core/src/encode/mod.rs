//! Constraint generation (Section 4 and Appendix B of the paper).
//!
//! The `Encoder` owns an SMT solver and the symbol tables that mirror the
//! paper's SMT functions:
//!
//! | paper symbol        | representation here                                    |
//! |---------------------|---------------------------------------------------------|
//! | `φ_so(t1, t2)`      | a compile-time constant (session order is observed)     |
//! | `φ_choice(s, i)`    | a finite-domain variable per read event                  |
//! | `φ_obs(s, i)`       | a constant (the observed writer)                         |
//! | `φ_boundary(s)`     | a finite-domain variable over boundary points            |
//! | `φ_wr_k / φ_wr`     | formulas built from `φ_choice` and `φ_boundary`          |
//! | `φ_hb(t1, t2)`      | a boolean variable per ordered transaction pair          |
//! | `φ_ww / φ_rw / φ_pco` | boolean variables per ordered pair (approximate encoding) |
//! | `rank(t1, t2)`      | a strict-order node per ordered pair                     |
//! | `φ_co(t)`           | a strict-order node per transaction                      |
//!
//! # Prediction boundaries
//!
//! A *boundary point* of a session bundles the two thresholds the constraints
//! need (Section 4.5, Table 1):
//!
//! * `match_before` — reads at positions strictly before it must keep their
//!   observed writer;
//! * `include_through` — events at positions up to it are part of the
//!   predicted execution (later events are excluded).
//!
//! With the **strict** boundary the points are the session's read positions
//! (`match_before = include_through =` the read's position): only the
//! boundary read itself may change, and everything after it is excluded. With
//! the **relaxed** boundary the points are whole transactions
//! (`match_before` = the transaction's first event, `include_through` = its
//! last): every read of the boundary transaction may change and the whole
//! transaction stays included. Both variants also offer `∞` (no change in
//! that session).

pub(crate) mod feasibility;
pub(crate) mod isolation;
pub(crate) mod unserializability;

use std::collections::{BTreeMap, HashMap};

use isopredict_history::{History, KeyId, SessionId, TxnId};
use isopredict_smt::{FdVar, OrderNode, SmtSolver, TermId};
use isopredict_store::IsolationLevel;

use crate::config::BoundaryKind;

/// A writer-choice variable for one read event (`φ_choice(s, i)`).
#[derive(Debug, Clone)]
pub(crate) struct ChoiceVar {
    /// The finite-domain variable.
    pub(crate) var: FdVar,
    /// The key the read accesses.
    pub(crate) key: KeyId,
    /// The transaction the read belongs to.
    #[allow(dead_code)] // kept for diagnostics and future encoders
    pub(crate) txn: TxnId,
    /// Candidate writer transactions (the variable's domain, in order).
    pub(crate) candidates: Vec<TxnId>,
    /// The writer observed in the input execution (`φ_obs(s, i)`).
    pub(crate) observed: TxnId,
}

/// One admissible value of a session's boundary variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BoundaryPoint {
    /// A finite boundary.
    At {
        /// Reads strictly before this position must keep their observed writer.
        match_before: usize,
        /// Events up to (and including) this position are part of the
        /// predicted execution.
        include_through: usize,
    },
    /// No boundary: the whole session is included and unchanged.
    Infinity,
}

/// The prediction-boundary variable of one session (`φ_boundary(s)`).
#[derive(Debug, Clone)]
pub(crate) struct BoundaryVar {
    pub(crate) var: FdVar,
    /// Domain values; [`BoundaryPoint::Infinity`] is always last.
    pub(crate) domain: Vec<BoundaryPoint>,
}

/// Constraint generator for one observed history.
pub(crate) struct Encoder<'h> {
    pub(crate) history: &'h History,
    pub(crate) smt: SmtSolver,
    #[allow(dead_code)] // recorded for diagnostics
    pub(crate) boundary_kind: BoundaryKind,
    pub(crate) choice: BTreeMap<(SessionId, usize), ChoiceVar>,
    pub(crate) boundary: BTreeMap<SessionId, BoundaryVar>,
    pub(crate) hb: BTreeMap<(TxnId, TxnId), TermId>,
    /// Memoized `φ_wr_k(t1, t2)` formulas.
    wr_k_cache: HashMap<(TxnId, TxnId, KeyId), TermId>,
    /// Memoized `φ_wr(t1, t2)` formulas.
    wr_cache: HashMap<(TxnId, TxnId), TermId>,
    /// Commit-order nodes (`φ_co(t)`), created on demand per isolation level.
    co_nodes: HashMap<TxnId, OrderNode>,
}

/// The transactions that participate in the analysis: `t0` plus every
/// transaction that still has a session or events. Slots emptied by
/// [`History::restrict`] (component-restricted prediction) are excluded —
/// they take part in no relation, and enumerating them would blow the
/// pair/triple constraint sets back up to whole-history size.
pub(crate) fn active_txns(history: &History) -> Vec<TxnId> {
    history
        .transactions()
        .iter()
        .filter(|t| t.id.is_initial() || t.session.is_some() || !t.events.is_empty())
        .map(|t| t.id)
        .collect()
}

impl<'h> Encoder<'h> {
    /// Creates the symbol tables for `history`.
    pub(crate) fn new(history: &'h History, boundary_kind: BoundaryKind) -> Self {
        let mut smt = SmtSolver::new();
        let mut choice = BTreeMap::new();
        let mut boundary = BTreeMap::new();
        let mut hb = BTreeMap::new();

        // φ_choice(s, i): one finite-domain variable per read event.
        for txn in history.committed_transactions() {
            // Transactions dropped by `History::restrict` (component-restricted
            // prediction) keep their slot but have no session and no events.
            let Some(session) = txn.session else { continue };
            for event in &txn.events {
                let Some(observed) = event.read_from() else {
                    continue;
                };
                let candidates: Vec<TxnId> = history
                    .writers_of(event.key)
                    .into_iter()
                    .filter(|&w| w != txn.id)
                    .collect();
                debug_assert!(candidates.contains(&observed));
                let var = smt.fd_var(format!("choice({session},{})", event.pos), candidates.len());
                choice.insert(
                    (session, event.pos),
                    ChoiceVar {
                        var,
                        key: event.key,
                        txn: txn.id,
                        candidates,
                        observed,
                    },
                );
            }
        }

        // φ_boundary(s): a boundary point per session (see the module docs).
        for session in history.sessions() {
            let mut points: Vec<BoundaryPoint> = Vec::new();
            match boundary_kind {
                BoundaryKind::Strict => {
                    for &txn in history.session_transactions(session) {
                        for pos in history.txn(txn).read_positions() {
                            points.push(BoundaryPoint::At {
                                match_before: pos,
                                include_through: pos,
                            });
                        }
                    }
                }
                BoundaryKind::Relaxed => {
                    for &txn in history.session_transactions(session) {
                        let txn = history.txn(txn);
                        let positions: Vec<usize> = txn.events.iter().map(|e| e.pos).collect();
                        let (Some(&first), Some(&last)) =
                            (positions.iter().min(), positions.iter().max())
                        else {
                            continue;
                        };
                        points.push(BoundaryPoint::At {
                            match_before: first,
                            include_through: last,
                        });
                    }
                }
            }
            points.sort_by_key(|p| match p {
                BoundaryPoint::At { match_before, .. } => *match_before,
                BoundaryPoint::Infinity => usize::MAX,
            });
            points.dedup();
            points.push(BoundaryPoint::Infinity);
            let var = smt.fd_var(format!("boundary({session})"), points.len());
            boundary.insert(
                session,
                BoundaryVar {
                    var,
                    domain: points,
                },
            );
        }

        // φ_hb(t1, t2): a boolean variable per ordered pair of *active*
        // transactions. Slots emptied by `History::restrict` take part in no
        // relation, so skipping them keeps a component-restricted encoding
        // proportional to the component, not to the whole history.
        let active = active_txns(history);
        for &t1 in &active {
            for &t2 in &active {
                if t1 == t2 {
                    continue;
                }
                let var = smt.bool_var(format!("hb({t1},{t2})"));
                hb.insert((t1, t2), var);
            }
        }

        Encoder {
            history,
            smt,
            boundary_kind,
            choice,
            boundary,
            hb,
            wr_k_cache: HashMap::new(),
            wr_cache: HashMap::new(),
            co_nodes: HashMap::new(),
        }
    }

    /// The observed session order, which the predicted execution preserves.
    pub(crate) fn so(&self, t1: TxnId, t2: TxnId) -> bool {
        self.history.so(t1, t2)
    }

    /// The atom `φ_choice(s, i) = writer`, or the constant false if `writer`
    /// is not a candidate for that read.
    pub(crate) fn choice_eq(&mut self, session: SessionId, pos: usize, writer: TxnId) -> TermId {
        let Some(choice) = self.choice.get(&(session, pos)) else {
            return self.smt.false_term();
        };
        match choice.candidates.iter().position(|&c| c == writer) {
            Some(index) => {
                let var = choice.var;
                self.smt.fd_eq(var, index)
            }
            None => self.smt.false_term(),
        }
    }

    /// The formula "the read at `pos` must keep its observed writer"
    /// (`pos < φ_boundary(s)` in the paper's strict encoding).
    pub(crate) fn must_match(&mut self, session: SessionId, pos: usize) -> TermId {
        self.boundary_predicate(session, |point| match point {
            BoundaryPoint::At { match_before, .. } => pos < match_before,
            BoundaryPoint::Infinity => true,
        })
    }

    /// The formula "the event at `pos` is part of the predicted execution"
    /// (`pos ≤ φ_boundary(s)` in the paper's strict encoding).
    pub(crate) fn included(&mut self, session: SessionId, pos: usize) -> TermId {
        self.boundary_predicate(session, |point| match point {
            BoundaryPoint::At {
                include_through, ..
            } => pos <= include_through,
            BoundaryPoint::Infinity => true,
        })
    }

    fn boundary_predicate<F>(&mut self, session: SessionId, predicate: F) -> TermId
    where
        F: Fn(BoundaryPoint) -> bool,
    {
        let Some(boundary) = self.boundary.get(&session) else {
            return self.smt.true_term();
        };
        let var = boundary.var;
        let matching: Vec<usize> = boundary
            .domain
            .iter()
            .enumerate()
            .filter(|&(_, &point)| predicate(point))
            .map(|(index, _)| index)
            .collect();
        if matching.len() == boundary.domain.len() {
            return self.smt.true_term();
        }
        let atoms: Vec<TermId> = matching.iter().map(|&i| self.smt.fd_eq(var, i)).collect();
        self.smt.or(atoms)
    }

    /// The formula `wrpos_k(writer) < φ_boundary(session(writer))`: the
    /// writer's (last) write of `key` is part of the predicted execution.
    /// True for the initial-state transaction.
    pub(crate) fn write_included(&mut self, writer: TxnId, key: KeyId) -> TermId {
        if writer.is_initial() {
            return self.smt.true_term();
        }
        let txn = self.history.txn(writer);
        let Some(pos) = txn.write_position(key) else {
            return self.smt.false_term();
        };
        let session = txn
            .session
            .expect("non-initial transactions have a session");
        self.included(session, pos)
    }

    /// The formula `φ_wr_k(writer, reader)`: some read of `key` in `reader`
    /// (within the boundary) reads from `writer` (Appendix B.1).
    pub(crate) fn wr_k(&mut self, writer: TxnId, reader: TxnId, key: KeyId) -> TermId {
        if let Some(&term) = self.wr_k_cache.get(&(writer, reader, key)) {
            return term;
        }
        let term = if writer == reader {
            self.smt.false_term()
        } else {
            let reader_txn = self.history.txn(reader);
            let session = reader_txn.session;
            let positions = reader_txn.read_positions_of_key(key);
            let mut disjuncts = Vec::new();
            if let Some(session) = session {
                for pos in positions {
                    let eq = self.choice_eq(session, pos, writer);
                    let within = self.included(session, pos);
                    disjuncts.push(self.smt.and([eq, within]));
                }
            }
            self.smt.or(disjuncts)
        };
        self.wr_k_cache.insert((writer, reader, key), term);
        term
    }

    /// The formula `φ_wr(writer, reader)`: the union of `φ_wr_k` over all keys.
    pub(crate) fn wr(&mut self, writer: TxnId, reader: TxnId) -> TermId {
        if let Some(&term) = self.wr_cache.get(&(writer, reader)) {
            return term;
        }
        let keys: Vec<KeyId> = self.history.txn(reader).read_keys();
        let disjuncts: Vec<TermId> = keys
            .into_iter()
            .map(|key| self.wr_k(writer, reader, key))
            .collect();
        let term = self.smt.or(disjuncts);
        self.wr_cache.insert((writer, reader), term);
        term
    }

    /// The boolean variable `φ_hb(t1, t2)`.
    pub(crate) fn hb(&self, t1: TxnId, t2: TxnId) -> TermId {
        self.hb[&(t1, t2)]
    }

    /// The commit-order node `φ_co(t)` used by the isolation constraints.
    pub(crate) fn co(&mut self, txn: TxnId) -> OrderNode {
        if let Some(&node) = self.co_nodes.get(&txn) {
            return node;
        }
        let node = self.smt.order_node();
        self.co_nodes.insert(txn, node);
        node
    }

    /// Applies all constraint groups for the given isolation level using the
    /// approximate unserializability encoding, or only feasibility/isolation
    /// when `encode_unserializable` is false (the exact strategy checks
    /// unserializability outside the solver).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn encode_all(
        &mut self,
        isolation: IsolationLevel,
        encode_unserializable: bool,
        require_change: bool,
    ) {
        self.encode_feasibility();
        if require_change {
            self.encode_require_change();
        }
        self.encode_isolation(isolation);
        if encode_unserializable {
            self.encode_approx_unserializability();
        }
    }

    /// Requires at least one read within its session's boundary to read from a
    /// different writer than observed.
    pub(crate) fn encode_require_change(&mut self) {
        let reads: Vec<(SessionId, usize, TxnId)> = self
            .choice
            .iter()
            .map(|(&(session, pos), choice)| (session, pos, choice.observed))
            .collect();
        let mut disjuncts = Vec::new();
        for (session, pos, observed) in reads {
            let same = self.choice_eq(session, pos, observed);
            let different = self.smt.not(same);
            let within = self.included(session, pos);
            disjuncts.push(self.smt.and([different, within]));
        }
        let any_change = self.smt.or(disjuncts);
        self.smt.assert_term(any_change);
    }

    // ------------------------------------------------------------------
    // Model extraction
    // ------------------------------------------------------------------

    /// The boundary point of `session` in the current model. Returns `None`
    /// when there is no model.
    pub(crate) fn model_boundary(&self, session: SessionId) -> Option<BoundaryPoint> {
        let boundary = self.boundary.get(&session)?;
        let index = self.smt.model_fd(boundary.var)?;
        boundary.domain.get(index).copied()
    }

    /// The writer chosen for the read at `(session, pos)` in the current
    /// model. Returns `None` when there is no model or no such read.
    pub(crate) fn model_choice(&self, session: SessionId, pos: usize) -> Option<TxnId> {
        let choice = self.choice.get(&(session, pos))?;
        let index = self.smt.model_fd(choice.var)?;
        choice.candidates.get(index).copied()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use isopredict_history::{History, HistoryBuilder, TxnId};

    /// Figure 1a / 2a: the second deposit reads the first (serializable).
    pub(crate) fn chained_deposits() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("client-1");
        let s2 = b.session("client-2");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "acct", t1);
        b.write(t2, "acct");
        b.commit(t2);
        b.finish()
    }

    /// Figure 9a/9b: a deposit, then a withdrawal and another deposit in a
    /// second session.
    pub(crate) fn deposit_withdraw_deposit() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("client-1");
        let s2 = b.session("client-2");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "acct", t1);
        b.write(t2, "acct");
        b.commit(t2);
        let t3 = b.begin(s2);
        b.read(t3, "acct", t2);
        b.write(t3, "acct");
        b.commit(t3);
        b.finish()
    }

    /// An observed Voter-like history: one writer, several read-only txns.
    pub(crate) fn single_writer_history() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let s3 = b.session("s3");
        let tw = b.begin(s1);
        b.read(tw, "votes", TxnId::INITIAL);
        b.write(tw, "votes");
        b.commit(tw);
        for s in [s2, s3] {
            let t = b.begin(s);
            b.read(t, "votes", tw);
            b.commit(t);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use isopredict_smt::SmtResult;

    #[test]
    fn symbol_tables_cover_reads_sessions_and_pairs() {
        let history = chained_deposits();
        let encoder = Encoder::new(&history, BoundaryKind::Strict);
        assert_eq!(encoder.choice.len(), 2);
        assert_eq!(encoder.boundary.len(), 2);
        // 3 transactions (incl. t0) → 6 ordered pairs.
        assert_eq!(encoder.hb.len(), 6);
        assert_eq!(encoder.boundary_kind, BoundaryKind::Strict);
    }

    #[test]
    fn boundary_domains_differ_between_strict_and_relaxed() {
        let history = chained_deposits();
        let strict = Encoder::new(&history, BoundaryKind::Strict);
        let relaxed = Encoder::new(&history, BoundaryKind::Relaxed);
        let s0 = SessionId(0);
        // Strict: the session's one read position plus ∞.
        assert_eq!(
            strict.boundary[&s0].domain,
            vec![
                BoundaryPoint::At {
                    match_before: 0,
                    include_through: 0
                },
                BoundaryPoint::Infinity
            ]
        );
        // Relaxed: the transaction (first event 0, last event 1) plus ∞.
        assert_eq!(
            relaxed.boundary[&s0].domain,
            vec![
                BoundaryPoint::At {
                    match_before: 0,
                    include_through: 1
                },
                BoundaryPoint::Infinity
            ]
        );
    }

    #[test]
    fn choice_eq_is_false_for_non_candidates() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        let s2 = SessionId(1);
        // t2's read of acct at position 0 can read from t0 or t1 but not from itself.
        let own = encoder.choice_eq(s2, 0, TxnId(2));
        assert_eq!(own, encoder.smt.false_term());
        let t1 = encoder.choice_eq(s2, 0, TxnId(1));
        assert_ne!(t1, encoder.smt.false_term());
    }

    #[test]
    fn feasibility_alone_is_satisfiable_with_the_observed_choices() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        assert_eq!(encoder.smt.check(), SmtResult::Sat);
    }

    #[test]
    fn model_extraction_reports_boundaries_and_choices() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Relaxed);
        encoder.encode_all(isopredict_store::IsolationLevel::Causal, true, true);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);
        let s2 = SessionId(1);
        let boundary = encoder.model_boundary(s2).expect("model has a boundary");
        assert_ne!(boundary, BoundaryPoint::Infinity);
        let choice = encoder.model_choice(s2, 0).expect("model has a choice");
        assert_eq!(choice, TxnId::INITIAL);
    }
}
