//! Feasibility constraints (Section 4.1 and Appendix B.1).
//!
//! The predicted execution must be a feasible execution prefix of the
//! application that produced the observed execution:
//!
//! * session order is preserved (implicit here: `φ_so` is a constant taken
//!   from the observed history);
//! * every read before its session's prediction boundary reads from the same
//!   writer as in the observed execution;
//! * every read on or before the boundary reads from a write that is itself
//!   before *its* session's boundary;
//! * each read's writer is one of the transactions that (last-)write the key
//!   (guaranteed by the choice variable's domain);
//! * happens-before is (at least) the transitive closure of session order and
//!   the chosen write–read relation.

use isopredict_history::{SessionId, TxnId};

use super::Encoder;

impl Encoder<'_> {
    /// Generates the feasibility constraints.
    pub(crate) fn encode_feasibility(&mut self) {
        self.encode_observed_prefix();
        self.encode_writer_within_boundary();
        self.encode_happens_before();
    }

    /// `i < φ_boundary(s) ⇒ φ_choice(s, i) = φ_obs(s, i)`.
    fn encode_observed_prefix(&mut self) {
        let reads: Vec<(SessionId, usize, TxnId)> = self
            .choice
            .iter()
            .map(|(&(session, pos), choice)| (session, pos, choice.observed))
            .collect();
        for (session, pos, observed) in reads {
            let before = self.must_match(session, pos);
            let same = self.choice_eq(session, pos, observed);
            let constraint = self.smt.implies(before, same);
            self.smt.assert_term(constraint);
        }
    }

    /// `φ_choice(s2, i) = t1 ∧ i ≤ φ_boundary(s2) ⇒ wrpos_k(t1) < φ_boundary(s1)`.
    fn encode_writer_within_boundary(&mut self) {
        let reads: Vec<(SessionId, usize, Vec<TxnId>, isopredict_history::KeyId)> = self
            .choice
            .iter()
            .map(|(&(session, pos), choice)| (session, pos, choice.candidates.clone(), choice.key))
            .collect();
        for (session, pos, candidates, key) in reads {
            for writer in candidates {
                if writer.is_initial() {
                    continue; // the initial state is trivially before every boundary
                }
                let eq = self.choice_eq(session, pos, writer);
                let within = self.included(session, pos);
                let antecedent = self.smt.and([eq, within]);
                let writer_ok = self.write_included(writer, key);
                let constraint = self.smt.implies(antecedent, writer_ok);
                self.smt.assert_term(constraint);
            }
        }
    }

    /// `φ_hb` contains session order, the chosen write–read relation, and is
    /// transitively closed: `so(t1,t2) ⇒ hb(t1,t2)`, `wr(t1,t2) ⇒ hb(t1,t2)`,
    /// and `hb(t1,t) ∧ hb(t,t2) ⇒ hb(t1,t2)`.
    ///
    /// Only this direction is needed: the isolation constraints treat `hb` as
    /// an antecedent, so the solver never benefits from setting `hb` true
    /// spuriously, and any superset of the real happens-before only makes the
    /// isolation constraints stronger.
    fn encode_happens_before(&mut self) {
        let txns: Vec<TxnId> = crate::encode::active_txns(self.history);
        for &t1 in &txns {
            for &t2 in &txns {
                if t1 == t2 {
                    continue;
                }
                let hb = self.hb(t1, t2);
                if self.so(t1, t2) {
                    self.smt.assert_term(hb);
                    continue;
                }
                let wr = self.wr(t1, t2);
                let implied = self.smt.implies(wr, hb);
                self.smt.assert_term(implied);
            }
        }
        for &t1 in &txns {
            for &t2 in &txns {
                if t1 == t2 {
                    continue;
                }
                for &mid in &txns {
                    if mid == t1 || mid == t2 {
                        continue;
                    }
                    let first = self.hb(t1, mid);
                    let second = self.hb(mid, t2);
                    let both = self.smt.and([first, second]);
                    let target = self.hb(t1, t2);
                    let constraint = self.smt.implies(both, target);
                    self.smt.assert_term(constraint);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::BoundaryKind;
    use crate::encode::test_support::*;
    use crate::encode::{BoundaryPoint, Encoder};
    use isopredict_history::{SessionId, TxnId};
    use isopredict_smt::SmtResult;

    /// With the boundary forced to ∞ (no change anywhere), every read must
    /// keep its observed writer.
    #[test]
    fn observed_prefix_constraint_pins_reads_before_the_boundary() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();

        // Force session 2's boundary to ∞ (always the last domain value).
        let s2 = SessionId(1);
        let boundary = encoder.boundary[&s2].clone();
        let infinity_index = boundary.domain.len() - 1;
        assert_eq!(boundary.domain[infinity_index], BoundaryPoint::Infinity);
        let pin = encoder.smt.fd_eq(boundary.var, infinity_index);
        encoder.smt.assert_term(pin);

        // Then t2's read cannot read from t0.
        let from_initial = encoder.choice_eq(s2, 0, TxnId::INITIAL);
        encoder.smt.assert_term(from_initial);
        assert_eq!(encoder.smt.check(), SmtResult::Unsat);
    }

    /// A read may change its writer when it sits on the boundary.
    #[test]
    fn boundary_read_may_change_writer() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        let s2 = SessionId(1);
        let from_initial = encoder.choice_eq(s2, 0, TxnId::INITIAL);
        encoder.smt.assert_term(from_initial);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);
        // The model must place session 2's boundary at the read (position 0),
        // not at ∞.
        assert_eq!(
            encoder.model_boundary(s2),
            Some(BoundaryPoint::At {
                match_before: 0,
                include_through: 0
            })
        );
    }

    /// A read cannot observe a write that lies beyond the writer's boundary.
    #[test]
    fn reads_cannot_observe_writes_beyond_the_writers_boundary() {
        let history = deposit_withdraw_deposit();
        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();

        // Pin session 1's boundary to its read at position 0 — its write at
        // position 1 is then beyond the boundary.
        let s1 = SessionId(0);
        let boundary = encoder.boundary[&s1].clone();
        let read_index = boundary
            .domain
            .iter()
            .position(|&p| {
                p == BoundaryPoint::At {
                    match_before: 0,
                    include_through: 0,
                }
            })
            .expect("position 0 is a read of session 1");
        let pin = encoder.smt.fd_eq(boundary.var, read_index);
        encoder.smt.assert_term(pin);

        // Session 2's first read (position 0 in session 2) observing t1 must
        // now be impossible.
        let s2 = SessionId(1);
        let from_t1 = encoder.choice_eq(s2, 0, TxnId(1));
        encoder.smt.assert_term(from_t1);
        assert_eq!(encoder.smt.check(), SmtResult::Unsat);
    }

    #[test]
    fn require_change_makes_the_unchanged_assignment_infeasible() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        encoder.encode_require_change();
        // Pin both reads to their observed writers: unsatisfiable.
        let pins: Vec<(SessionId, usize, TxnId)> = encoder
            .choice
            .iter()
            .map(|(&(s, p), c)| (s, p, c.observed))
            .collect();
        for (session, pos, observed) in pins {
            let eq = encoder.choice_eq(session, pos, observed);
            encoder.smt.assert_term(eq);
        }
        assert_eq!(encoder.smt.check(), SmtResult::Unsat);
    }
}
