//! IsoPredict: dynamic predictive analysis for detecting unserializable
//! behaviors in weakly isolated data store applications.
//!
//! This crate is a from-scratch Rust implementation of the analysis described
//! in *IsoPredict: Dynamic Predictive Analysis for Detecting Unserializable
//! Behaviors in Weakly Isolated Data Store Applications* (PLDI 2024). Given an
//! **observed, serializable** execution history of a transactional data store
//! application, it searches for an **alternative execution of the same
//! application** that is
//!
//! 1. *feasible* — a prefix of an execution the application could really
//!    produce (Section 4.1 / 4.5 of the paper: reads before the per-session
//!    prediction boundary keep their observed writers),
//! 2. *unserializable* (Section 4.2), and
//! 3. valid under a target **weak isolation level** (Section 4.3) — causal
//!    consistency, read committed, or snapshot isolation, each a row of the
//!    pluggable isolation seam ([`isopredict_history::isolation`] for the
//!    checker/chooser half, this crate's encoder axiom table for the SMT
//!    half).
//!
//! The search is expressed as constraints over writer-choice variables and
//! solved with the workspace's own SMT substrate (`isopredict-smt`). Predicted
//! executions can then be **validated** by replaying the application against a
//! store that steers each read toward the predicted writer (Section 5), using
//! [`validate`].
//!
//! # Quick start
//!
//! ```
//! use isopredict::{IsolationLevel, Predictor, PredictorConfig, Strategy};
//! use isopredict_history::{HistoryBuilder, TxnId};
//!
//! // The observed execution of Figure 1a: the second deposit reads the first.
//! let mut builder = HistoryBuilder::new();
//! let s1 = builder.session("client-1");
//! let s2 = builder.session("client-2");
//! let t1 = builder.begin(s1);
//! builder.read(t1, "acct", TxnId::INITIAL);
//! builder.write(t1, "acct");
//! builder.commit(t1);
//! let t2 = builder.begin(s2);
//! builder.read(t2, "acct", t1);
//! builder.write(t2, "acct");
//! builder.commit(t2);
//! let observed = builder.finish();
//!
//! // Predict a causally consistent but unserializable execution (Figure 1b).
//! let predictor = Predictor::new(PredictorConfig {
//!     strategy: Strategy::ApproxRelaxed,
//!     isolation: IsolationLevel::Causal,
//!     ..PredictorConfig::default()
//! });
//! let outcome = predictor.predict(&observed);
//! let prediction = outcome.prediction().expect("a prediction exists");
//! assert!(!isopredict_history::serializability::check(&prediction.predicted).is_serializable());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod encode;
pub mod report;
pub mod validate;

mod config;
mod predict;
mod prediction;

pub use config::{BoundaryKind, PredictorConfig, Strategy};
pub use isopredict_obs::Obs;
pub use isopredict_store::IsolationLevel;
pub use predict::{NoPredictionReason, PredictionOutcome, Predictor};
pub use prediction::{ChangedRead, Prediction};
pub use validate::{ValidationOutcome, ValidationPlan};
