//! Validation of predicted executions (Section 5 of the paper).
//!
//! A prediction may be infeasible in practice: replaying the application and
//! steering each read toward the predicted writer can *diverge* (the
//! application takes a different branch, aborts, or the predicted writer is
//! unavailable), and the execution that actually occurs — the *validating
//! execution* — may turn out to be serializable after all. Validation
//! therefore:
//!
//! 1. computes a transaction schedule that executes every transaction on or
//!    happens-before the prediction boundary, in an order consistent with the
//!    predicted happens-before relation ([`ValidationPlan`]);
//! 2. replays the application against the store in
//!    [`isopredict_store::StoreMode::Controlled`] mode with a
//!    [`ReplayScript`] derived from the prediction;
//! 3. checks whether the resulting validating execution is unserializable
//!    ([`assess`]).
//!
//! Step 2 requires driving the actual application, so it is performed by the
//! caller (the workload crate's runner or a user's own harness); this module
//! provides the planning and assessment halves, which are application
//! agnostic.

use isopredict_history::{serializability, History, SerializabilityResult};
use isopredict_store::{Divergence, DivergenceKind, IsolationLevel, ReplayScript};

use crate::prediction::Prediction;

/// Everything a caller needs to replay a predicted execution.
#[derive(Debug, Clone)]
pub struct ValidationPlan {
    /// `(session index, plan index)` steps, in an order consistent with the
    /// predicted happens-before relation. Only transactions on or before the
    /// prediction boundary (plus any earlier aborted attempts needed to keep
    /// event positions aligned) are scheduled.
    pub schedule: Vec<(usize, usize)>,
    /// The per-read writer dictation derived from the predicted history.
    pub script: ReplayScript,
    /// The isolation level the validating execution must preserve.
    pub isolation: IsolationLevel,
}

/// Builds a validation plan from a prediction.
///
/// `committed_plan_indices[s]` lists, for session `s`, the plan indices of the
/// transactions that committed in the *observed* run, in session order (the
/// workload runner reports this as `RunOutput::committed_indices`). Sessions
/// that executed no transactions may be absent (treated as empty).
#[must_use]
pub fn plan_validation(
    prediction: &Prediction,
    committed_plan_indices: &[Vec<usize>],
) -> ValidationPlan {
    let predicted = &prediction.predicted;

    // Transactions that are part of the predicted prefix.
    let included: Vec<bool> = predicted
        .transactions()
        .iter()
        .map(|t| !t.id.is_initial() && !t.events.is_empty())
        .collect();

    // Order the included transactions consistently with predicted hb.
    let hb = isopredict_history::relations::hb_graph(predicted);
    let topo = hb
        .topological_order()
        .unwrap_or_else(|| predicted.transactions().iter().map(|t| t.id).collect());

    // Emit steps: before each included transaction, emit any not-yet-emitted
    // plan entries of the same session with a smaller plan index (these are
    // the attempts that aborted in the observed run — they must still run so
    // that event positions stay aligned with the prediction).
    let mut next_plan_index: Vec<usize> = vec![0; predicted.num_sessions()];
    let mut emitted_per_session: Vec<usize> = vec![0; predicted.num_sessions()];
    let mut schedule = Vec::new();
    for txn_id in topo {
        if !included.get(txn_id.index()).copied().unwrap_or(false) {
            continue;
        }
        let txn = predicted.txn(txn_id);
        let Some(session) = txn.session else { continue };
        let s = session.index();
        let committed_for_session: &[usize] = committed_plan_indices
            .get(s)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let order_in_session = emitted_per_session[s];
        let Some(&plan_index) = committed_for_session.get(order_in_session) else {
            continue;
        };
        while next_plan_index[s] < plan_index {
            schedule.push((s, next_plan_index[s]));
            next_plan_index[s] += 1;
        }
        schedule.push((s, plan_index));
        next_plan_index[s] = plan_index + 1;
        emitted_per_session[s] += 1;
    }

    ValidationPlan {
        schedule,
        script: ReplayScript::from_history(predicted),
        isolation: prediction.isolation,
    }
}

/// The result of validating a prediction.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// Whether the validating execution is unserializable — i.e. the
    /// prediction is confirmed as a real, feasible anomaly.
    pub validated: bool,
    /// Whether the validating execution diverged from the predicted one
    /// (different keys, missing writers, or isolation conflicts).
    pub diverged: bool,
    /// The recorded divergences.
    pub divergences: Vec<Divergence>,
    /// The serializability verdict on the validating execution, including a
    /// witness commit order when it is serializable.
    pub serializability: SerializabilityResult,
}

/// Assesses a validating execution produced by replaying the application with
/// the plan from [`plan_validation`].
#[must_use]
pub fn assess(validating_history: &History, divergences: &[Divergence]) -> ValidationOutcome {
    let serializability = serializability::check(validating_history);
    let diverged = divergences
        .iter()
        .any(|d| d.kind != DivergenceKind::PastPrediction);
    ValidationOutcome {
        validated: !serializability.is_serializable(),
        diverged,
        divergences: divergences.to_vec(),
        serializability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PredictorConfig, Strategy};
    use crate::encode::test_support::chained_deposits;
    use crate::predict::Predictor;
    use isopredict_history::SessionId;
    use isopredict_store::IsolationLevel as Iso;

    fn example_prediction() -> Prediction {
        let observed = chained_deposits();
        let predictor = Predictor::new(PredictorConfig {
            strategy: Strategy::ApproxRelaxed,
            isolation: Iso::Causal,
            ..PredictorConfig::default()
        });
        match predictor.predict(&observed) {
            crate::PredictionOutcome::Prediction(p) => *p,
            other => panic!("expected a prediction, got {other:?}"),
        }
    }

    #[test]
    fn plan_schedules_every_included_transaction_in_hb_order() {
        let prediction = example_prediction();
        // Both sessions committed their only transaction at plan index 0.
        let committed = vec![vec![0], vec![0]];
        let plan = plan_validation(&prediction, &committed);
        assert_eq!(plan.schedule.len(), 2);
        assert!(plan.schedule.contains(&(0, 0)));
        assert!(plan.schedule.contains(&(1, 0)));
        assert_eq!(plan.isolation, Iso::Causal);
        assert!(plan.script.num_sessions() >= 2);
    }

    #[test]
    fn plan_inserts_earlier_aborted_attempts() {
        let prediction = example_prediction();
        // Pretend session 1's committed transaction was plan entry 2 (entries
        // 0 and 1 aborted in the observed run): they must be replayed first.
        let committed = vec![vec![2], vec![0]];
        let plan = plan_validation(&prediction, &committed);
        let session0: Vec<usize> = plan
            .schedule
            .iter()
            .filter(|(s, _)| *s == 0)
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(session0, vec![0, 1, 2]);
    }

    #[test]
    fn assessment_distinguishes_serializable_and_unserializable_replays() {
        let prediction = example_prediction();
        // If the replay reproduced the predicted history exactly, validation succeeds.
        let outcome = assess(&prediction.predicted, &[]);
        assert!(outcome.validated);
        assert!(!outcome.diverged);

        // A serializable replay (the observed history) fails validation.
        let observed = chained_deposits();
        let divergences = vec![Divergence {
            session: SessionId(1),
            position: 0,
            kind: isopredict_store::DivergenceKind::IsolationViolation,
            key: "acct".to_string(),
        }];
        let outcome = assess(&observed, &divergences);
        assert!(!outcome.validated);
        assert!(outcome.diverged);

        // Past-prediction reads do not count as divergence.
        let benign = vec![Divergence {
            session: SessionId(0),
            position: 5,
            kind: isopredict_store::DivergenceKind::PastPrediction,
            key: "acct".to_string(),
        }];
        assert!(!assess(&observed, &benign).diverged);
    }
}
