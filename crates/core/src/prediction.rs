//! Predicted executions and their extraction from solver models.

use std::collections::BTreeMap;
use std::time::Duration;

use isopredict_history::{EventKind, History, SessionId, TxnId};
use isopredict_smt::EncodingStats;
use isopredict_store::IsolationLevel;

use crate::config::Strategy;
use crate::encode::{BoundaryPoint, Encoder};

/// A read whose writer differs between the observed and predicted executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangedRead {
    /// The session the read belongs to.
    pub session: SessionId,
    /// The read's session-wide position.
    pub position: usize,
    /// The key read.
    pub key: String,
    /// The writer observed in the input execution.
    pub observed: TxnId,
    /// The writer the prediction assigns.
    pub predicted: TxnId,
}

/// A predicted unserializable execution.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The predicted execution history (the prefix up to each session's
    /// prediction boundary, with the predicted write–read relation).
    /// Transaction identifiers and event positions match the observed
    /// history's.
    pub predicted: History,
    /// Per session, the last event position included in the prediction
    /// (`None` means the whole session is included).
    pub boundaries: BTreeMap<SessionId, Option<usize>>,
    /// The reads whose writers changed relative to the observed execution.
    pub changed_reads: Vec<ChangedRead>,
    /// The isolation level the prediction conforms to.
    pub isolation: IsolationLevel,
    /// The strategy that produced the prediction.
    pub strategy: Strategy,
    /// Size of the generated constraint system.
    pub stats: EncodingStats,
    /// Time spent generating constraints.
    pub constraint_gen_time: Duration,
    /// Time spent solving (including, for the exact strategy, the
    /// per-candidate serializability checks).
    pub solving_time: Duration,
    /// For the approximate strategies, the `pco` cycle that witnesses
    /// unserializability (transaction ids refer to the observed history).
    pub pco_cycle: Option<Vec<TxnId>>,
}

impl Prediction {
    /// Number of transactions of the predicted prefix that still contain
    /// events.
    #[must_use]
    pub fn included_transactions(&self) -> usize {
        self.predicted
            .committed_transactions()
            .filter(|t| !t.events.is_empty())
            .count()
    }
}

/// Extracts the predicted history, boundaries and changed reads from the
/// encoder's current model.
///
/// # Panics
///
/// Panics if the encoder has no model (callers only invoke this after a
/// satisfiable check).
pub(crate) fn extract(
    encoder: &Encoder<'_>,
    observed: &History,
) -> (
    History,
    BTreeMap<SessionId, Option<usize>>,
    Vec<ChangedRead>,
) {
    let mut boundaries = BTreeMap::new();
    for session in observed.sessions() {
        let point = encoder
            .model_boundary(session)
            .expect("model assigns every boundary variable");
        let limit = match point {
            BoundaryPoint::At {
                include_through, ..
            } => Some(include_through),
            BoundaryPoint::Infinity => None,
        };
        boundaries.insert(session, limit);
    }

    let mut changed = Vec::new();
    let predicted = observed.map_events(|txn, event| {
        let Some(session) = txn.session else {
            return Some(*event);
        };
        let limit = boundaries.get(&session).copied().flatten();
        if let Some(limit) = limit {
            if event.pos > limit {
                return None;
            }
        }
        match event.kind {
            EventKind::Write => Some(*event),
            EventKind::Read { from } => {
                let predicted_writer = encoder.model_choice(session, event.pos).unwrap_or(from);
                if predicted_writer != from {
                    changed.push(ChangedRead {
                        session,
                        position: event.pos,
                        key: observed.key_name(event.key).to_string(),
                        observed: from,
                        predicted: predicted_writer,
                    });
                }
                Some(isopredict_history::Event {
                    key: event.key,
                    pos: event.pos,
                    kind: EventKind::Read {
                        from: predicted_writer,
                    },
                })
            }
        }
    });

    (predicted, boundaries, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BoundaryKind;
    use crate::encode::test_support::chained_deposits;
    use isopredict_smt::SmtResult;

    #[test]
    fn extraction_reports_the_changed_read_and_prefix() {
        let observed = chained_deposits();
        let mut encoder = Encoder::new(&observed, BoundaryKind::Relaxed);
        encoder.encode_all(IsolationLevel::Causal, true, true);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);

        let (predicted, boundaries, changed) = extract(&encoder, &observed);
        // The racing-deposits prediction changes exactly one read, in session 2.
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].observed, TxnId(1));
        assert_eq!(changed[0].predicted, TxnId::INITIAL);
        assert_eq!(changed[0].key, "acct");
        // The predicted history keeps both transactions' events.
        assert_eq!(predicted.num_reads(), 2);
        assert_eq!(predicted.num_writes(), 2);
        // Session 1 is unchanged, so its boundary may be ∞ or cover its whole
        // transaction; session 2's boundary includes its transaction.
        assert!(boundaries.contains_key(&SessionId(0)));
        assert!(boundaries.contains_key(&SessionId(1)));
        assert!(
            !isopredict_history::serializability::check(&predicted).is_serializable(),
            "the extracted prediction must be unserializable"
        );
        assert!(isopredict_history::causal::is_causal(&predicted));
    }
}
