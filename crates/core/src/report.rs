//! Human-readable and Graphviz reports of predictions, in the spirit of the
//! paper's textual and graphical output.

use std::fmt::Write as _;

use isopredict_history::dot::{render, Overlay};
use isopredict_history::History;

use crate::predict::format_cycle;
use crate::prediction::Prediction;

/// A textual summary of a prediction: which reads changed, where each
/// session's boundary sits, and the cycle that witnesses unserializability.
#[must_use]
pub fn text_report(observed: &History, prediction: &Prediction) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "predicted {} execution ({} strategy) is unserializable",
        prediction.isolation, prediction.strategy
    );
    let _ = writeln!(
        out,
        "  {} of {} committed transactions are part of the predicted prefix",
        prediction.included_transactions(),
        observed.committed_transactions().count()
    );
    for (&session, &limit) in &prediction.boundaries {
        match limit {
            None => {
                let _ = writeln!(
                    out,
                    "  session {} ({}): no boundary (unchanged)",
                    session,
                    observed.session_name(session)
                );
            }
            Some(pos) => {
                let _ = writeln!(
                    out,
                    "  session {} ({}): boundary after event position {}",
                    session,
                    observed.session_name(session),
                    pos
                );
            }
        }
    }
    for changed in &prediction.changed_reads {
        let _ = writeln!(
            out,
            "  read of `{}` at {}[{}] now reads from {} (observed {})",
            changed.key, changed.session, changed.position, changed.predicted, changed.observed
        );
    }
    if let Some(cycle) = &prediction.pco_cycle {
        let _ = writeln!(out, "  pco cycle: {}", format_cycle(cycle));
    }
    let _ = writeln!(
        out,
        "  encoding: {} ({} constraint generation, {} solving)",
        prediction.stats,
        humanize(prediction.constraint_gen_time),
        humanize(prediction.solving_time)
    );
    out
}

/// A Graphviz rendering of the predicted history, with the witnessing cycle
/// overlaid as dashed edges (compare the paper's Figures 7, 8 and 10).
#[must_use]
pub fn dot_report(prediction: &Prediction) -> String {
    let mut overlay = Overlay {
        edges: Vec::new(),
        caption: Some(format!(
            "predicted {} execution ({})",
            prediction.isolation, prediction.strategy
        )),
    };
    if let Some(cycle) = &prediction.pco_cycle {
        for (index, &from) in cycle.iter().enumerate() {
            let to = cycle[(index + 1) % cycle.len()];
            overlay.edges.push((from, to, "pco".to_string()));
        }
    }
    render(&prediction.predicted, &overlay)
}

fn humanize(duration: std::time::Duration) -> String {
    if duration.as_secs() >= 1 {
        format!("{:.2} s", duration.as_secs_f64())
    } else {
        format!("{:.2} ms", duration.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PredictorConfig, Strategy};
    use crate::encode::test_support::chained_deposits;
    use crate::predict::Predictor;
    use isopredict_store::IsolationLevel;

    fn example() -> (History, Prediction) {
        let observed = chained_deposits();
        let predictor = Predictor::new(PredictorConfig {
            strategy: Strategy::ApproxRelaxed,
            isolation: IsolationLevel::Causal,
            ..PredictorConfig::default()
        });
        let prediction = match predictor.predict(&observed) {
            crate::PredictionOutcome::Prediction(p) => *p,
            other => panic!("expected a prediction, got {other:?}"),
        };
        (observed, prediction)
    }

    #[test]
    fn text_report_mentions_the_changed_read_and_cycle() {
        let (observed, prediction) = example();
        let report = text_report(&observed, &prediction);
        assert!(report.contains("unserializable"));
        assert!(report.contains("acct"));
        assert!(report.contains("pco cycle"));
        assert!(report.contains("literals"));
    }

    #[test]
    fn dot_report_is_valid_graphviz_with_an_overlay() {
        let (_, prediction) = example();
        let dot = dot_report(&prediction);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("pco"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn durations_are_humanized() {
        assert!(humanize(std::time::Duration::from_millis(5)).ends_with("ms"));
        assert!(humanize(std::time::Duration::from_secs(2)).ends_with(" s"));
    }
}
