//! OLTP-Bench-style transactional workloads ported to the key–value store.
//!
//! The paper evaluates IsoPredict on four OLTP-Bench programs — Smallbank,
//! Voter, TPC-C and Wikipedia — using the simplified ports that the MonkeyDB
//! authors prepared, made deterministic by fixing the number of sessions and
//! transactions per session and by seeding the random number generator
//! (Section 7.1). This crate re-implements those workloads directly against
//! the key–value interface (the level at which the formal model and the
//! analysis operate):
//!
//! * [`smallbank`] — checking/savings accounts with deposits, withdrawals and
//!   transfers;
//! * [`voter`] — the vote-once benchmark of Algorithm 3;
//! * [`tpcc`] — a reduced TPC-C with new-order, payment, delivery,
//!   order-status and stock-level transactions;
//! * [`wikipedia`] — mostly-read page/revision traffic with occasional edits.
//!
//! Beyond the paper's four programs, [`overdraft`] adds the canonical
//! write-skew scenario (sum-guarded withdrawals over per-customer account
//! pairs) that separates snapshot isolation from serializability.
//!
//! Every workload is deterministic given a [`WorkloadConfig`] (sessions,
//! transactions per session, RNG seed, scale) and exposes MonkeyDB-style
//! assertions over the final state so that the Table 6/7 comparison can be
//! reproduced.
//!
//! # Example
//!
//! ```
//! use isopredict_store::StoreMode;
//! use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig};
//!
//! let config = WorkloadConfig::small(0);
//! let output = run(
//!     Benchmark::Smallbank,
//!     &config,
//!     StoreMode::SerializableRecord,
//!     &Schedule::RoundRobin,
//! );
//! assert!(output.violations.is_empty(), "serializable runs never fail assertions");
//! assert!(output.history.len() > 1);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod assertions;
pub mod overdraft;
pub mod smallbank;
pub mod stats;
pub mod tpcc;
pub mod voter;
pub mod wikipedia;

mod config;
mod runner;
mod spec;

pub use assertions::AssertionViolation;
pub use config::{WorkloadConfig, WorkloadSize};
pub use runner::{run, RunOutput, Schedule};
pub use spec::{Benchmark, ParseBenchmarkError, PlannedTxn, TxnResult};
pub use stats::WorkloadCharacteristics;
