//! Workload characteristics (the rows of the paper's Table 3).

use isopredict_history::History;

/// The quantities Table 3 reports for one execution: key–value accesses and
/// committed transactions.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct WorkloadCharacteristics {
    /// Number of read events.
    pub reads: f64,
    /// Number of write events.
    pub writes: f64,
    /// Number of committed transactions (excluding `t0`).
    pub committed: f64,
    /// Number of committed transactions that perform no writes.
    pub read_only: f64,
}

impl WorkloadCharacteristics {
    /// Extracts the characteristics of a single history.
    #[must_use]
    pub fn of(history: &History) -> Self {
        WorkloadCharacteristics {
            reads: history.num_reads() as f64,
            writes: history.num_writes() as f64,
            committed: history.committed_transactions().count() as f64,
            read_only: history.num_read_only() as f64,
        }
    }

    /// Averages the characteristics of several executions (the paper averages
    /// over ten trials).
    #[must_use]
    pub fn average(samples: &[WorkloadCharacteristics]) -> Self {
        if samples.is_empty() {
            return WorkloadCharacteristics::default();
        }
        let n = samples.len() as f64;
        WorkloadCharacteristics {
            reads: samples.iter().map(|s| s.reads).sum::<f64>() / n,
            writes: samples.iter().map(|s| s.writes).sum::<f64>() / n,
            committed: samples.iter().map(|s| s.committed).sum::<f64>() / n,
            read_only: samples.iter().map(|s| s.read_only).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for WorkloadCharacteristics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} reads, {:.1} writes, {:.1} committed ({:.1} read-only)",
            self.reads, self.writes, self.committed, self.read_only
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Benchmark, Schedule, WorkloadConfig};
    use isopredict_store::StoreMode;

    #[test]
    fn characteristics_reflect_the_history() {
        let config = WorkloadConfig::small(0);
        let output = run(
            Benchmark::Voter,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        let chars = WorkloadCharacteristics::of(&output.history);
        assert!(chars.reads > 0.0);
        assert!(chars.committed >= chars.read_only);
        assert_eq!(chars.committed, output.committed.len() as f64);
    }

    #[test]
    fn averaging_is_the_arithmetic_mean() {
        let a = WorkloadCharacteristics {
            reads: 10.0,
            writes: 2.0,
            committed: 4.0,
            read_only: 1.0,
        };
        let b = WorkloadCharacteristics {
            reads: 20.0,
            writes: 4.0,
            committed: 6.0,
            read_only: 3.0,
        };
        let avg = WorkloadCharacteristics::average(&[a, b]);
        assert_eq!(avg.reads, 15.0);
        assert_eq!(avg.writes, 3.0);
        assert_eq!(avg.committed, 5.0);
        assert_eq!(avg.read_only, 2.0);
        assert_eq!(
            WorkloadCharacteristics::average(&[]),
            WorkloadCharacteristics::default()
        );
        assert!(avg.to_string().contains("15.0 reads"));
    }
}
