//! MonkeyDB-style assertion violations.
//!
//! MonkeyDB detects unserializable behaviour through programmer-crafted
//! assertions over the final state (Section 7.3). Each benchmark in this
//! crate ships the analogous assertions; a violation is *sufficient* (but not
//! necessary) evidence that the execution was unserializable.

/// A failed assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertionViolation {
    /// Short name of the invariant (e.g. `"smallbank.total-balance"`).
    pub name: String,
    /// Human-readable details (expected vs. actual).
    pub details: String,
}

impl AssertionViolation {
    /// Creates a violation record.
    #[must_use]
    pub fn new(name: impl Into<String>, details: impl Into<String>) -> Self {
        AssertionViolation {
            name: name.into(),
            details: details.into(),
        }
    }
}

impl std::fmt::Display for AssertionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.name, self.details)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_name_and_details() {
        let v = AssertionViolation::new("voter.limit", "phone 0 voted 2 times");
        assert_eq!(v.to_string(), "voter.limit: phone 0 voted 2 times");
    }
}
