//! Workload configuration.

use serde::{Deserialize, Serialize};

/// The two workload sizes evaluated in the paper: three sessions each running
/// four (small) or eight (large) transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSize {
    /// 3 sessions × 4 transactions.
    Small,
    /// 3 sessions × 8 transactions.
    Large,
}

impl std::fmt::Display for WorkloadSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadSize::Small => write!(f, "small"),
            WorkloadSize::Large => write!(f, "large"),
        }
    }
}

/// Deterministic workload parameters (Section 7.1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of client sessions.
    pub sessions: usize,
    /// Number of transactions attempted by each session.
    pub txns_per_session: usize,
    /// RNG seed (the paper uses ten seeds per configuration).
    pub seed: u64,
    /// Data-size knob: number of accounts / contestants / items / pages. Small
    /// values increase contention, which is what surfaces anomalies.
    pub scale: usize,
}

impl WorkloadConfig {
    /// The paper's small workload: 3 sessions × 4 transactions.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        WorkloadConfig {
            sessions: 3,
            txns_per_session: 4,
            seed,
            scale: 4,
        }
    }

    /// The paper's large workload: 3 sessions × 8 transactions.
    #[must_use]
    pub fn large(seed: u64) -> Self {
        WorkloadConfig {
            sessions: 3,
            txns_per_session: 8,
            seed,
            scale: 4,
        }
    }

    /// Builds a config for the given size.
    #[must_use]
    pub fn sized(size: WorkloadSize, seed: u64) -> Self {
        match size {
            WorkloadSize::Small => WorkloadConfig::small(seed),
            WorkloadSize::Large => WorkloadConfig::large(seed),
        }
    }

    /// Total number of attempted transactions.
    #[must_use]
    pub fn total_txns(&self) -> usize {
        self.sessions * self.txns_per_session
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_shapes() {
        let small = WorkloadConfig::small(7);
        assert_eq!(small.sessions, 3);
        assert_eq!(small.txns_per_session, 4);
        assert_eq!(small.total_txns(), 12);
        assert_eq!(small.seed, 7);

        let large = WorkloadConfig::large(7);
        assert_eq!(large.total_txns(), 24);
        assert_eq!(WorkloadConfig::sized(WorkloadSize::Small, 7), small);
        assert_eq!(WorkloadConfig::sized(WorkloadSize::Large, 7), large);
        assert_eq!(WorkloadSize::Small.to_string(), "small");
        assert_eq!(WorkloadSize::Large.to_string(), "large");
    }
}
