//! The Overdraft benchmark: the canonical snapshot-isolation anomaly.
//!
//! Each customer owns a checking and a savings account; a withdrawal from
//! either account is allowed whenever the customer's *combined* balance
//! covers it. The two withdrawal flavors write disjoint keys while reading
//! both — exactly the write-skew shape that serializability forbids but
//! snapshot isolation admits (no write–write conflict, so first-committer
//! wins never fires). Under a serializable execution the combined balance
//! can never go negative; under a weak level, two guarded withdrawals that
//! both observe the old balances overdraw the customer, which the assertion
//! detects. This goes beyond the paper's four OLTP-Bench programs: it is the
//! scenario that separates snapshot isolation from serializability, the way
//! Smallbank's racing read-modify-writes separate causal from snapshot
//! isolation.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use isopredict_store::{Client, Engine};

use crate::assertions::AssertionViolation;
use crate::config::WorkloadConfig;
use crate::spec::{PlannedTxn, TxnResult};

/// Initial balance of every checking and savings account.
pub const INITIAL_BALANCE: i64 = 100;

/// A planned Overdraft transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverdraftTxn {
    /// Withdraw from the checking account if the combined balance covers it.
    WithdrawChecking {
        /// Customer id.
        customer: usize,
        /// Amount to withdraw (positive).
        amount: i64,
    },
    /// Withdraw from the savings account if the combined balance covers it.
    WithdrawSavings {
        /// Customer id.
        customer: usize,
        /// Amount to withdraw (positive).
        amount: i64,
    },
    /// Read both balances (an audit).
    Audit {
        /// Customer id.
        customer: usize,
    },
}

fn checking(customer: usize) -> String {
    format!("overdraft:checking:{customer}")
}

fn savings(customer: usize) -> String {
    format!("overdraft:savings:{customer}")
}

fn num_customers(config: &WorkloadConfig) -> usize {
    (config.scale / 2).max(1)
}

/// Loads the initial account balances.
pub fn setup(engine: &Engine, config: &WorkloadConfig) {
    for customer in 0..num_customers(config) {
        engine.set_initial(&checking(customer), INITIAL_BALANCE.into());
        engine.set_initial(&savings(customer), INITIAL_BALANCE.into());
    }
}

/// Plans each session's transactions deterministically from the seed.
#[must_use]
pub fn plan(config: &WorkloadConfig) -> Vec<Vec<OverdraftTxn>> {
    (0..config.sessions)
        .map(|session| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(config.seed ^ (0x0d7a_0000 + session as u64) << 8);
            (0..config.txns_per_session)
                .map(|_| random_txn(&mut rng, num_customers(config)))
                .collect()
        })
        .collect()
}

fn random_txn(rng: &mut ChaCha8Rng, customers: usize) -> OverdraftTxn {
    let customer = rng.gen_range(0..customers);
    // Amounts above one account's balance but below the combined balance:
    // a single guarded withdrawal is fine, two racing ones overdraw.
    let amount = rng.gen_range(110..=180);
    match rng.gen_range(0..5) {
        0 | 1 => OverdraftTxn::WithdrawChecking { customer, amount },
        2 | 3 => OverdraftTxn::WithdrawSavings { customer, amount },
        _ => OverdraftTxn::Audit { customer },
    }
}

/// The keys `txn` may write, fed to the store's write-conflict accounting
/// under snapshot isolation. The two withdrawal flavors declare *disjoint*
/// keys, which is what keeps write skew SI-legal here.
#[must_use]
pub fn write_set(txn: &OverdraftTxn) -> Vec<String> {
    match txn {
        OverdraftTxn::WithdrawChecking { customer, .. } => vec![checking(*customer)],
        OverdraftTxn::WithdrawSavings { customer, .. } => vec![savings(*customer)],
        OverdraftTxn::Audit { .. } => Vec::new(),
    }
}

/// Executes one planned transaction against the store.
pub fn execute(txn: &OverdraftTxn, client: &Client<'_>) -> TxnResult {
    let mut t = client.begin();
    t.declare_writes(write_set(txn));
    match txn {
        OverdraftTxn::WithdrawChecking { customer, amount } => {
            let checking_balance = t.get_int(&checking(*customer), 0);
            let savings_balance = t.get_int(&savings(*customer), 0);
            if checking_balance + savings_balance >= *amount {
                t.put(&checking(*customer), checking_balance - amount);
            }
            t.commit();
            TxnResult::Committed
        }
        OverdraftTxn::WithdrawSavings { customer, amount } => {
            let checking_balance = t.get_int(&checking(*customer), 0);
            let savings_balance = t.get_int(&savings(*customer), 0);
            if checking_balance + savings_balance >= *amount {
                t.put(&savings(*customer), savings_balance - amount);
            }
            t.commit();
            TxnResult::Committed
        }
        OverdraftTxn::Audit { customer } => {
            let _ = t.get_int(&checking(*customer), 0);
            let _ = t.get_int(&savings(*customer), 0);
            t.commit();
            TxnResult::Committed
        }
    }
}

/// The write-skew assertion: every withdrawal was guarded by the combined
/// balance, so under any *serializable* execution no customer's combined
/// balance ever goes negative. A negative combined balance is the
/// materialized write-skew anomaly.
#[must_use]
pub fn assertions(
    engine: &Engine,
    config: &WorkloadConfig,
    _committed: &[PlannedTxn],
) -> Vec<AssertionViolation> {
    let mut violations = Vec::new();
    for customer in 0..num_customers(config) {
        let combined =
            engine.peek_int(&checking(customer), 0) + engine.peek_int(&savings(customer), 0);
        if combined < 0 {
            violations.push(AssertionViolation::new(
                "overdraft.combined-balance",
                format!("customer {customer}: combined balance {combined} is negative"),
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, Schedule};
    use crate::spec::Benchmark;
    use isopredict_store::StoreMode;

    #[test]
    fn serializable_runs_never_overdraw() {
        for seed in 0..5 {
            let config = WorkloadConfig::small(seed);
            let output = run(
                Benchmark::Overdraft,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            assert!(output.violations.is_empty(), "seed {seed}");
            assert!(
                isopredict_history::serializability::check(&output.history).is_serializable(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn snapshot_isolation_runs_stay_si_but_can_overdraw() {
        // Write skew is SI-legal: some weak-random SI seed must materialize a
        // negative combined balance while every run stays SI-conformant.
        let mut overdrawn = false;
        for seed in 0..20 {
            let config = WorkloadConfig::small(0);
            let output = run(
                Benchmark::Overdraft,
                &config,
                StoreMode::WeakRandom {
                    level: isopredict_store::IsolationLevel::Snapshot,
                    seed,
                },
                &Schedule::RoundRobin,
            );
            assert!(
                isopredict_history::si::is_si(&output.history),
                "seed {seed}"
            );
            if !output.violations.is_empty() {
                overdrawn = true;
                break;
            }
        }
        assert!(
            overdrawn,
            "no weak SI seed produced the write-skew overdraft"
        );
    }
}
