//! A reduced TPC-C: new-order, payment, order-status, delivery and
//! stock-level transactions against a single warehouse.
//!
//! The paper uses the MonkeyDB port of OLTP-Bench's TPC-C, which translates
//! the SQL schema to key–value accesses. This module keeps the same
//! transaction mix and consistency conditions at a smaller scale (the
//! district/order-id counter and the stock levels are the contended state
//! whose lost updates the assertions detect).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use isopredict_store::{Client, Engine, Value};

use crate::assertions::AssertionViolation;
use crate::config::WorkloadConfig;
use crate::spec::{PlannedTxn, TxnResult};

/// Initial stock quantity of every item.
pub const INITIAL_STOCK: i64 = 50;

/// Initial year-to-date amount of the warehouse.
pub const INITIAL_YTD: i64 = 0;

/// A planned TPC-C transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpccTxn {
    /// Place a new order for a set of `(item, quantity)` pairs in a district.
    NewOrder {
        /// District the order is placed in.
        district: usize,
        /// Ordered items with quantities.
        items: Vec<(usize, i64)>,
    },
    /// Record a customer payment.
    Payment {
        /// District of the customer.
        district: usize,
        /// Customer id.
        customer: usize,
        /// Payment amount.
        amount: i64,
    },
    /// Look up a customer's most recent order.
    OrderStatus {
        /// District of the customer.
        district: usize,
        /// Customer id.
        customer: usize,
    },
    /// Deliver the oldest undelivered order of a district.
    Delivery {
        /// District to deliver in.
        district: usize,
    },
    /// Count items below a stock threshold.
    StockLevel {
        /// District whose recent orders are inspected.
        district: usize,
        /// Threshold quantity.
        threshold: i64,
    },
}

fn next_order_key(district: usize) -> String {
    format!("tpcc:district:{district}:next_o_id")
}

fn district_ytd_key(district: usize) -> String {
    format!("tpcc:district:{district}:ytd")
}

fn warehouse_ytd_key() -> String {
    "tpcc:warehouse:ytd".to_string()
}

fn stock_key(item: usize) -> String {
    format!("tpcc:stock:{item}")
}

fn item_key(item: usize) -> String {
    format!("tpcc:item:{item}")
}

fn customer_balance_key(district: usize, customer: usize) -> String {
    format!("tpcc:customer:{district}:{customer}:balance")
}

fn customer_last_order_key(district: usize, customer: usize) -> String {
    format!("tpcc:customer:{district}:{customer}:last_order")
}

fn order_key(district: usize, order: i64) -> String {
    format!("tpcc:order:{district}:{order}")
}

fn delivered_key(district: usize) -> String {
    format!("tpcc:district:{district}:delivered")
}

fn num_items(config: &WorkloadConfig) -> usize {
    config.scale.max(2) * 2
}

fn num_districts(config: &WorkloadConfig) -> usize {
    config.scale.max(2) / 2 + 1
}

fn num_customers(config: &WorkloadConfig) -> usize {
    config.scale.max(2)
}

/// Loads warehouse, district, item, stock and customer rows.
pub fn setup(engine: &Engine, config: &WorkloadConfig) {
    engine.set_initial(&warehouse_ytd_key(), INITIAL_YTD.into());
    for district in 0..num_districts(config) {
        engine.set_initial(&next_order_key(district), 1i64.into());
        engine.set_initial(&district_ytd_key(district), INITIAL_YTD.into());
        engine.set_initial(&delivered_key(district), 0i64.into());
        for customer in 0..num_customers(config) {
            engine.set_initial(&customer_balance_key(district, customer), 0i64.into());
            engine.set_initial(&customer_last_order_key(district, customer), 0i64.into());
        }
    }
    for item in 0..num_items(config) {
        engine.set_initial(&item_key(item), Value::Str(format!("item-{item}")));
        engine.set_initial(&stock_key(item), INITIAL_STOCK.into());
    }
}

/// Plans each session's transactions: roughly the TPC-C mix (45% new-order,
/// 43% payment, and the rest split among the read-heavy transactions).
#[must_use]
pub fn plan(config: &WorkloadConfig) -> Vec<Vec<TpccTxn>> {
    (0..config.sessions)
        .map(|session| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(config.seed ^ (0x79cc_0000 + session as u64) << 8);
            (0..config.txns_per_session)
                .map(|_| random_txn(&mut rng, config))
                .collect()
        })
        .collect()
}

fn random_txn(rng: &mut ChaCha8Rng, config: &WorkloadConfig) -> TpccTxn {
    let district = rng.gen_range(0..num_districts(config));
    let customer = rng.gen_range(0..num_customers(config));
    match rng.gen_range(0..100) {
        0..=44 => {
            let count = rng.gen_range(2..=3);
            let items = (0..count)
                .map(|_| (rng.gen_range(0..num_items(config)), rng.gen_range(1..5)))
                .collect();
            TpccTxn::NewOrder { district, items }
        }
        45..=87 => TpccTxn::Payment {
            district,
            customer,
            amount: rng.gen_range(1..500),
        },
        88..=91 => TpccTxn::OrderStatus { district, customer },
        92..=95 => TpccTxn::Delivery { district },
        _ => TpccTxn::StockLevel {
            district,
            threshold: rng.gen_range(10..40),
        },
    }
}

/// The keys `txn` may write, fed to the store's write-conflict accounting
/// under snapshot isolation. The freshly inserted order row's key embeds the
/// order id read inside the transaction and so cannot be named up front; it
/// is unique per (district, id) once the declared next-order counter is
/// conflict-checked, so omitting it is harmless.
#[must_use]
pub fn write_set(txn: &TpccTxn) -> Vec<String> {
    match txn {
        TpccTxn::NewOrder { district, items } => {
            let mut keys = vec![next_order_key(*district)];
            keys.extend(items.iter().map(|(item, _)| stock_key(*item)));
            keys
        }
        TpccTxn::Payment {
            district, customer, ..
        } => vec![
            warehouse_ytd_key(),
            district_ytd_key(*district),
            customer_balance_key(*district, *customer),
        ],
        TpccTxn::OrderStatus { .. } | TpccTxn::StockLevel { .. } => Vec::new(),
        TpccTxn::Delivery { district } => vec![delivered_key(*district)],
    }
}

/// Executes one planned transaction.
pub fn execute(txn: &TpccTxn, client: &Client<'_>) -> TxnResult {
    let mut t = client.begin();
    t.declare_writes(write_set(txn));
    match txn {
        TpccTxn::NewOrder { district, items } => {
            // Validate the items exist; TPC-C aborts ~1% of new orders on an
            // invalid item, which we model as aborting when an item is missing.
            for (item, _) in items {
                if t.get(&item_key(*item)).is_none() {
                    t.rollback();
                    return TxnResult::Aborted;
                }
            }
            let order_id = t.get_int(&next_order_key(*district), 1);
            t.put(&next_order_key(*district), order_id + 1);
            let mut total_qty = 0;
            for (item, qty) in items {
                let stock = t.get_int(&stock_key(*item), 0);
                let new_stock = if stock - qty >= 0 {
                    stock - qty
                } else {
                    stock - qty + 91 // TPC-C's replenishment rule
                };
                t.put(&stock_key(*item), new_stock);
                total_qty += qty;
            }
            t.put(
                &order_key(*district, order_id),
                Value::Str(format!("qty={total_qty}")),
            );
            t.commit();
            TxnResult::Committed
        }
        TpccTxn::Payment {
            district,
            customer,
            amount,
        } => {
            let warehouse_ytd = t.get_int(&warehouse_ytd_key(), 0);
            t.put(&warehouse_ytd_key(), warehouse_ytd + amount);
            let district_ytd = t.get_int(&district_ytd_key(*district), 0);
            t.put(&district_ytd_key(*district), district_ytd + amount);
            let balance = t.get_int(&customer_balance_key(*district, *customer), 0);
            t.put(
                &customer_balance_key(*district, *customer),
                balance - amount,
            );
            t.commit();
            TxnResult::Committed
        }
        TpccTxn::OrderStatus { district, customer } => {
            let last = t.get_int(&customer_last_order_key(*district, *customer), 0);
            if last > 0 {
                let _ = t.get(&order_key(*district, last));
            }
            let _ = t.get_int(&customer_balance_key(*district, *customer), 0);
            t.commit();
            TxnResult::Committed
        }
        TpccTxn::Delivery { district } => {
            let delivered = t.get_int(&delivered_key(*district), 0);
            let next = t.get_int(&next_order_key(*district), 1);
            if delivered + 1 >= next {
                // Nothing to deliver.
                t.commit();
                return TxnResult::Committed;
            }
            let order = delivered + 1;
            let _ = t.get(&order_key(*district, order));
            t.put(&delivered_key(*district), order);
            t.commit();
            TxnResult::Committed
        }
        TpccTxn::StockLevel {
            district,
            threshold,
        } => {
            let _ = t.get_int(&next_order_key(*district), 1);
            let mut low = 0;
            for item in 0..8 {
                if t.get_int(&stock_key(item), INITIAL_STOCK) < *threshold {
                    low += 1;
                }
            }
            let _ = low;
            t.commit();
            TxnResult::Committed
        }
    }
}

/// Consistency conditions in the spirit of TPC-C's own checks.
#[must_use]
pub fn assertions(
    engine: &Engine,
    config: &WorkloadConfig,
    committed: &[PlannedTxn],
) -> Vec<AssertionViolation> {
    let mut violations = Vec::new();

    // Condition 1: each district's next order id advanced exactly once per
    // committed NewOrder in that district (lost updates shrink it).
    for district in 0..num_districts(config) {
        let expected = 1 + committed
            .iter()
            .filter(|p| {
                matches!(p, PlannedTxn::Tpcc(TpccTxn::NewOrder { district: d, .. }) if *d == district)
            })
            .count() as i64;
        let actual = engine.peek_int(&next_order_key(district), 1);
        if actual != expected {
            violations.push(AssertionViolation::new(
                "tpcc.next-order-id",
                format!("district {district}: expected next_o_id {expected}, found {actual}"),
            ));
        }
    }

    // Condition 2: warehouse YTD equals the sum of district YTDs, and both
    // equal the total of committed payments.
    let expected_ytd: i64 = committed
        .iter()
        .filter_map(|p| match p {
            PlannedTxn::Tpcc(TpccTxn::Payment { amount, .. }) => Some(*amount),
            _ => None,
        })
        .sum();
    let warehouse_ytd = engine.peek_int(&warehouse_ytd_key(), 0);
    let district_sum: i64 = (0..num_districts(config))
        .map(|d| engine.peek_int(&district_ytd_key(d), 0))
        .sum();
    if warehouse_ytd != expected_ytd {
        violations.push(AssertionViolation::new(
            "tpcc.warehouse-ytd",
            format!("expected warehouse ytd {expected_ytd}, found {warehouse_ytd}"),
        ));
    }
    if district_sum != expected_ytd {
        violations.push(AssertionViolation::new(
            "tpcc.district-ytd",
            format!("expected district ytd sum {expected_ytd}, found {district_sum}"),
        ));
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Benchmark, Schedule};
    use isopredict_store::StoreMode;

    #[test]
    fn serializable_runs_satisfy_the_consistency_conditions() {
        for seed in 0..5 {
            let config = WorkloadConfig::small(seed);
            let output = run(
                Benchmark::Tpcc,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            assert!(
                output.violations.is_empty(),
                "seed {seed}: {:?}",
                output.violations
            );
        }
    }

    #[test]
    fn tpcc_is_write_heavy_compared_to_wikipedia() {
        let config = WorkloadConfig::small(3);
        let tpcc = run(
            Benchmark::Tpcc,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        let wikipedia = run(
            Benchmark::Wikipedia,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        assert!(tpcc.history.num_writes() > wikipedia.history.num_writes());
    }
}
