//! The Smallbank benchmark: checking/savings accounts.
//!
//! Each customer has a checking and a savings account. Transactions deposit,
//! withdraw, transfer and amalgamate balances; the application aborts a
//! transaction when a balance constraint would be violated (like Algorithm 2
//! of the paper). Under weak isolation, racing read-modify-write transactions
//! lose updates, which the total-balance assertion detects.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use isopredict_store::{Client, Engine};

use crate::assertions::AssertionViolation;
use crate::config::WorkloadConfig;
use crate::spec::{PlannedTxn, TxnResult};

/// Initial balance of every checking and savings account.
pub const INITIAL_BALANCE: i64 = 100;

/// A planned Smallbank transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmallbankTxn {
    /// Read both balances of a customer.
    Balance {
        /// Customer id.
        customer: usize,
    },
    /// Deposit into a checking account.
    DepositChecking {
        /// Customer id.
        customer: usize,
        /// Amount to deposit (positive).
        amount: i64,
    },
    /// Add to (or withdraw from) a savings account; aborts if the savings
    /// balance would become negative.
    TransactSavings {
        /// Customer id.
        customer: usize,
        /// Amount to add (may be negative).
        amount: i64,
    },
    /// Move everything from one customer's accounts into another's checking.
    Amalgamate {
        /// Source customer.
        from: usize,
        /// Destination customer.
        to: usize,
    },
    /// Cash a check: deduct from checking, with a penalty when the combined
    /// balance is insufficient.
    WriteCheck {
        /// Customer id.
        customer: usize,
        /// Check amount.
        amount: i64,
    },
    /// Transfer between two customers' checking accounts; aborts if the
    /// source has insufficient funds.
    SendPayment {
        /// Source customer.
        from: usize,
        /// Destination customer.
        to: usize,
        /// Amount to transfer.
        amount: i64,
    },
}

fn checking(customer: usize) -> String {
    format!("smallbank:checking:{customer}")
}

fn savings(customer: usize) -> String {
    format!("smallbank:savings:{customer}")
}

/// Loads the initial account balances.
pub fn setup(engine: &Engine, config: &WorkloadConfig) {
    for customer in 0..config.scale {
        engine.set_initial(&checking(customer), INITIAL_BALANCE.into());
        engine.set_initial(&savings(customer), INITIAL_BALANCE.into());
    }
}

/// Plans each session's transactions deterministically from the seed.
#[must_use]
pub fn plan(config: &WorkloadConfig) -> Vec<Vec<SmallbankTxn>> {
    (0..config.sessions)
        .map(|session| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(config.seed ^ (0x5ba1_0000 + session as u64) << 8);
            (0..config.txns_per_session)
                .map(|_| random_txn(&mut rng, config.scale))
                .collect()
        })
        .collect()
}

fn random_txn(rng: &mut ChaCha8Rng, scale: usize) -> SmallbankTxn {
    let customer = rng.gen_range(0..scale);
    let other = rng.gen_range(0..scale);
    match rng.gen_range(0..6) {
        0 => SmallbankTxn::Balance { customer },
        1 => SmallbankTxn::DepositChecking {
            customer,
            amount: rng.gen_range(10..60),
        },
        2 => SmallbankTxn::TransactSavings {
            customer,
            amount: rng.gen_range(-80..80),
        },
        3 => SmallbankTxn::Amalgamate {
            from: customer,
            to: other,
        },
        4 => SmallbankTxn::WriteCheck {
            customer,
            amount: rng.gen_range(10..120),
        },
        _ => SmallbankTxn::SendPayment {
            from: customer,
            to: other,
            amount: rng.gen_range(10..80),
        },
    }
}

/// The keys `txn` may write, declared to the store up front so that
/// write-conflict-sensitive isolation levels (snapshot isolation's
/// first-committer-wins) can account for them when choosing legal writers.
/// Conditional writes are over-declared, which is sound — the chooser just
/// becomes more conservative.
#[must_use]
pub fn write_set(txn: &SmallbankTxn) -> Vec<String> {
    match txn {
        SmallbankTxn::Balance { .. } => Vec::new(),
        SmallbankTxn::DepositChecking { customer, .. } => vec![checking(*customer)],
        SmallbankTxn::TransactSavings { customer, .. } => vec![savings(*customer)],
        SmallbankTxn::Amalgamate { from, to } => {
            vec![savings(*from), checking(*from), checking(*to)]
        }
        SmallbankTxn::WriteCheck { customer, .. } => vec![checking(*customer)],
        SmallbankTxn::SendPayment { from, to, .. } => vec![checking(*from), checking(*to)],
    }
}

/// Executes one planned transaction against the store.
pub fn execute(txn: &SmallbankTxn, client: &Client<'_>) -> TxnResult {
    let mut t = client.begin();
    t.declare_writes(write_set(txn));
    match txn {
        SmallbankTxn::Balance { customer } => {
            let _ = t.get_int(&checking(*customer), 0);
            let _ = t.get_int(&savings(*customer), 0);
            t.commit();
            TxnResult::Committed
        }
        SmallbankTxn::DepositChecking { customer, amount } => {
            let balance = t.get_int(&checking(*customer), 0);
            t.put(&checking(*customer), balance + amount);
            t.commit();
            TxnResult::Committed
        }
        SmallbankTxn::TransactSavings { customer, amount } => {
            let balance = t.get_int(&savings(*customer), 0);
            if balance + amount < 0 {
                t.rollback();
                return TxnResult::Aborted;
            }
            t.put(&savings(*customer), balance + amount);
            t.commit();
            TxnResult::Committed
        }
        SmallbankTxn::Amalgamate { from, to } => {
            if from == to {
                // Degenerate case: nothing to move.
                let _ = t.get_int(&checking(*from), 0);
                t.commit();
                return TxnResult::Committed;
            }
            let from_savings = t.get_int(&savings(*from), 0);
            let from_checking = t.get_int(&checking(*from), 0);
            t.put(&savings(*from), 0i64);
            t.put(&checking(*from), 0i64);
            let to_checking = t.get_int(&checking(*to), 0);
            t.put(&checking(*to), to_checking + from_savings + from_checking);
            t.commit();
            TxnResult::Committed
        }
        SmallbankTxn::WriteCheck { customer, amount } => {
            let total = t.get_int(&checking(*customer), 0) + t.get_int(&savings(*customer), 0);
            let balance = t.get_int(&checking(*customer), 0);
            if total < *amount {
                // Overdraft penalty of 1.
                t.put(&checking(*customer), balance - amount - 1);
            } else {
                t.put(&checking(*customer), balance - amount);
            }
            t.commit();
            TxnResult::Committed
        }
        SmallbankTxn::SendPayment { from, to, amount } => {
            let from_balance = t.get_int(&checking(*from), 0);
            if from_balance < *amount || from == to {
                t.rollback();
                return TxnResult::Aborted;
            }
            t.put(&checking(*from), from_balance - amount);
            let to_balance = t.get_int(&checking(*to), 0);
            t.put(&checking(*to), to_balance + amount);
            t.commit();
            TxnResult::Committed
        }
    }
}

/// MonkeyDB-style assertion: money is conserved. The final total balance must
/// equal the initial total plus the net amount injected or removed by the
/// committed transactions (transfers and amalgamations are neutral; write
/// checks and savings transactions change the total by known amounts).
#[must_use]
pub fn assertions(
    engine: &Engine,
    config: &WorkloadConfig,
    committed: &[PlannedTxn],
) -> Vec<AssertionViolation> {
    let mut expected: i64 = 2 * INITIAL_BALANCE * config.scale as i64;
    let mut penalties_possible = 0i64;
    for planned in committed {
        let PlannedTxn::Smallbank(txn) = planned else {
            continue;
        };
        match txn {
            SmallbankTxn::Balance { .. }
            | SmallbankTxn::Amalgamate { .. }
            | SmallbankTxn::SendPayment { .. } => {}
            SmallbankTxn::DepositChecking { amount, .. } => expected += amount,
            SmallbankTxn::TransactSavings { amount, .. } => expected += amount,
            SmallbankTxn::WriteCheck { amount, .. } => {
                expected -= amount;
                // The overdraft penalty depends on the balance the transaction
                // observed; account for it as a tolerance below.
                penalties_possible += 1;
            }
        }
    }

    let mut actual = 0i64;
    for customer in 0..config.scale {
        actual += engine.peek_int(&checking(customer), 0);
        actual += engine.peek_int(&savings(customer), 0);
    }

    let mut violations = Vec::new();
    // Allow each committed WriteCheck to have charged its penalty of 1.
    let lower = expected - penalties_possible;
    if actual > expected || actual < lower {
        violations.push(AssertionViolation::new(
            "smallbank.total-balance",
            format!("expected total in [{lower}, {expected}], found {actual}"),
        ));
    }

    for customer in 0..config.scale {
        let savings_balance = engine.peek_int(&savings(customer), 0);
        if savings_balance < 0 {
            violations.push(AssertionViolation::new(
                "smallbank.negative-savings",
                format!("customer {customer} has savings balance {savings_balance}"),
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Benchmark, Schedule};
    use isopredict_store::StoreMode;

    #[test]
    fn serializable_runs_never_violate_assertions() {
        for seed in 0..5 {
            let config = WorkloadConfig::small(seed);
            let output = run(
                Benchmark::Smallbank,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            assert!(
                output.violations.is_empty(),
                "seed {seed}: {:?}",
                output.violations
            );
        }
    }

    #[test]
    fn executions_touch_the_expected_keys() {
        let config = WorkloadConfig::small(0);
        let output = run(
            Benchmark::Smallbank,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        assert!(output.history.num_reads() > 0);
        assert!(output
            .history
            .keys()
            .any(|k| output.history.key_name(k).starts_with("smallbank:")));
    }

    #[test]
    fn total_balance_assertion_detects_lost_updates() {
        // Hand-craft a lost update: both deposits read the initial balance.
        let engine = Engine::new(StoreMode::SerializableRecord);
        let config = WorkloadConfig {
            sessions: 2,
            txns_per_session: 1,
            seed: 0,
            scale: 1,
        };
        setup(&engine, &config);
        // Manually perform two deposits that both read the initial balance by
        // bypassing the engine's latest-read rule: simulate the lost update by
        // writing the final state directly.
        let c = engine.client("fixer");
        let mut t = c.begin();
        let initial = t.get_int(&checking(0), 0);
        t.put(&checking(0), initial + 50);
        t.commit();
        let committed = vec![
            PlannedTxn::Smallbank(SmallbankTxn::DepositChecking {
                customer: 0,
                amount: 50,
            }),
            PlannedTxn::Smallbank(SmallbankTxn::DepositChecking {
                customer: 0,
                amount: 60,
            }),
        ];
        // The store only received +50, but the committed plan says +110.
        let violations = assertions(&engine, &config, &committed);
        assert!(violations
            .iter()
            .any(|v| v.name == "smallbank.total-balance"));
    }
}
