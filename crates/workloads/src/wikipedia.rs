//! The Wikipedia benchmark: mostly-read page traffic with occasional edits.
//!
//! Pages have a latest-revision pointer and per-revision records. Most
//! transactions fetch a page (several reads); a few update a page, which
//! bumps the revision counter and installs a new revision. The assertions
//! check the page/revision linkage, which weak isolation can break by losing
//! revision-counter updates.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use isopredict_store::{Client, Engine, Value};

use crate::assertions::AssertionViolation;
use crate::config::WorkloadConfig;
use crate::spec::{PlannedTxn, TxnResult};

/// A planned Wikipedia transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WikipediaTxn {
    /// Fetch a page anonymously (reads only).
    GetPageAnonymous {
        /// Page id.
        page: usize,
    },
    /// Fetch a page as a logged-in user (reads the user record too).
    GetPageAuthenticated {
        /// Page id.
        page: usize,
        /// User id.
        user: usize,
    },
    /// Edit a page: install a new revision and bump the revision pointer.
    UpdatePage {
        /// Page id.
        page: usize,
        /// Editing user.
        user: usize,
    },
    /// Add a page to a user's watch list.
    AddToWatchList {
        /// User id.
        user: usize,
        /// Page id.
        page: usize,
    },
}

fn latest_rev_key(page: usize) -> String {
    format!("wiki:page:{page}:latest_rev")
}

fn page_text_key(page: usize) -> String {
    format!("wiki:page:{page}:text")
}

fn revision_key(page: usize, rev: i64) -> String {
    format!("wiki:rev:{page}:{rev}")
}

fn user_key(user: usize) -> String {
    format!("wiki:user:{user}")
}

fn user_edits_key(user: usize) -> String {
    format!("wiki:user:{user}:editcount")
}

fn watchlist_key(user: usize) -> String {
    format!("wiki:user:{user}:watchlist")
}

fn num_pages(config: &WorkloadConfig) -> usize {
    config.scale.max(2)
}

fn num_users(config: &WorkloadConfig) -> usize {
    config.scale.max(2)
}

/// Loads pages (revision 1) and users.
pub fn setup(engine: &Engine, config: &WorkloadConfig) {
    for page in 0..num_pages(config) {
        engine.set_initial(&latest_rev_key(page), 1i64.into());
        engine.set_initial(
            &page_text_key(page),
            Value::Str(format!("page-{page}-rev-1")),
        );
        engine.set_initial(
            &revision_key(page, 1),
            Value::Str(format!("page-{page}-rev-1")),
        );
    }
    for user in 0..num_users(config) {
        engine.set_initial(&user_key(user), Value::Str(format!("user-{user}")));
        engine.set_initial(&user_edits_key(user), 0i64.into());
        engine.set_initial(&watchlist_key(user), 0i64.into());
    }
}

/// Plans each session's transactions: ~75% page fetches, ~15% edits, ~10%
/// watch-list updates, mirroring the read-heavy mix the paper reports
/// ("Wikipedia … has few writing transactions").
#[must_use]
pub fn plan(config: &WorkloadConfig) -> Vec<Vec<WikipediaTxn>> {
    (0..config.sessions)
        .map(|session| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(config.seed ^ (0x3193_0000 + session as u64) << 8);
            (0..config.txns_per_session)
                .map(|_| {
                    let page = rng.gen_range(0..num_pages(config));
                    let user = rng.gen_range(0..num_users(config));
                    match rng.gen_range(0..100) {
                        0..=44 => WikipediaTxn::GetPageAnonymous { page },
                        45..=74 => WikipediaTxn::GetPageAuthenticated { page, user },
                        75..=89 => WikipediaTxn::UpdatePage { page, user },
                        _ => WikipediaTxn::AddToWatchList { user, page },
                    }
                })
                .collect()
        })
        .collect()
}

/// The keys `txn` may write, fed to the store's write-conflict accounting
/// under snapshot isolation. The new revision row's key embeds the revision
/// id read inside the transaction; the declared latest-revision counter
/// covers the conflict, so omitting the row itself is harmless.
#[must_use]
pub fn write_set(txn: &WikipediaTxn) -> Vec<String> {
    match txn {
        WikipediaTxn::GetPageAnonymous { .. } | WikipediaTxn::GetPageAuthenticated { .. } => {
            Vec::new()
        }
        WikipediaTxn::UpdatePage { page, user } => vec![
            page_text_key(*page),
            latest_rev_key(*page),
            user_edits_key(*user),
        ],
        WikipediaTxn::AddToWatchList { user, .. } => vec![watchlist_key(*user)],
    }
}

/// Executes one planned transaction.
pub fn execute(txn: &WikipediaTxn, client: &Client<'_>) -> TxnResult {
    let mut t = client.begin();
    t.declare_writes(write_set(txn));
    match txn {
        WikipediaTxn::GetPageAnonymous { page } => {
            let rev = t.get_int(&latest_rev_key(*page), 1);
            let _ = t.get(&page_text_key(*page));
            let _ = t.get(&revision_key(*page, rev));
            t.commit();
            TxnResult::Committed
        }
        WikipediaTxn::GetPageAuthenticated { page, user } => {
            let _ = t.get(&user_key(*user));
            let _ = t.get_int(&user_edits_key(*user), 0);
            let rev = t.get_int(&latest_rev_key(*page), 1);
            let _ = t.get(&page_text_key(*page));
            let _ = t.get(&revision_key(*page, rev));
            t.commit();
            TxnResult::Committed
        }
        WikipediaTxn::UpdatePage { page, user } => {
            let rev = t.get_int(&latest_rev_key(*page), 1);
            let new_rev = rev + 1;
            let text = format!("page-{page}-rev-{new_rev}");
            t.put(&revision_key(*page, new_rev), Value::Str(text.clone()));
            t.put(&page_text_key(*page), Value::Str(text));
            t.put(&latest_rev_key(*page), new_rev);
            let edits = t.get_int(&user_edits_key(*user), 0);
            t.put(&user_edits_key(*user), edits + 1);
            t.commit();
            TxnResult::Committed
        }
        WikipediaTxn::AddToWatchList { user, page } => {
            let _ = t.get(&user_key(*user));
            let count = t.get_int(&watchlist_key(*user), 0);
            let _ = t.get_int(&latest_rev_key(*page), 1);
            t.put(&watchlist_key(*user), count + 1);
            t.commit();
            TxnResult::Committed
        }
    }
}

/// Assertions: the revision pointer advanced once per committed edit of the
/// page, and the page text matches the latest revision record.
#[must_use]
pub fn assertions(
    engine: &Engine,
    config: &WorkloadConfig,
    committed: &[PlannedTxn],
) -> Vec<AssertionViolation> {
    let mut violations = Vec::new();
    for page in 0..num_pages(config) {
        let edits = committed
            .iter()
            .filter(|p| {
                matches!(p, PlannedTxn::Wikipedia(WikipediaTxn::UpdatePage { page: q, .. }) if *q == page)
            })
            .count() as i64;
        let expected = 1 + edits;
        let actual = engine.peek_int(&latest_rev_key(page), 1);
        if actual != expected {
            violations.push(AssertionViolation::new(
                "wikipedia.lost-revision",
                format!("page {page}: expected latest revision {expected}, found {actual}"),
            ));
        }
        let text = engine.peek(&page_text_key(page));
        let revision = engine.peek(&revision_key(page, actual));
        if text != revision {
            violations.push(AssertionViolation::new(
                "wikipedia.text-revision-mismatch",
                format!(
                    "page {page}: text {text:?} does not match revision {actual} ({revision:?})"
                ),
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Benchmark, Schedule};
    use isopredict_store::StoreMode;

    #[test]
    fn serializable_runs_keep_pages_consistent() {
        for seed in 0..5 {
            let config = WorkloadConfig::small(seed);
            let output = run(
                Benchmark::Wikipedia,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            assert!(
                output.violations.is_empty(),
                "seed {seed}: {:?}",
                output.violations
            );
        }
    }

    #[test]
    fn workload_is_read_heavy() {
        let config = WorkloadConfig::large(1);
        let output = run(
            Benchmark::Wikipedia,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        assert!(output.history.num_reads() > output.history.num_writes());
        // Most transactions are read-only, as the paper notes.
        assert!(
            output.history.num_read_only() * 2 >= output.history.committed_transactions().count()
        );
    }
}
