//! Driving a workload against the store.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use isopredict_history::{History, Trace, TraceMeta};
use isopredict_store::{Divergence, Engine, RunStats, StoreMode};

use crate::assertions::AssertionViolation;
use crate::config::WorkloadConfig;
use crate::spec::{Benchmark, PlannedTxn, TxnResult};

/// In what order the sessions' transactions execute.
///
/// The store executes transactions serially (as MonkeyDB does); the schedule
/// decides the interleaving at transaction granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule {
    /// Round-robin over the sessions: s0/t0, s1/t0, s2/t0, s0/t1, …
    RoundRobin,
    /// A seeded random interleaving (still one transaction at a time).
    Shuffled {
        /// Seed for the interleaving.
        seed: u64,
    },
    /// An explicit list of `(session, transaction index)` pairs; only the
    /// listed transactions execute, in the given order. Used by validation to
    /// follow the predicted execution's happens-before order.
    Explicit(Vec<(usize, usize)>),
}

impl Schedule {
    /// Expands the schedule into a list of `(session, txn index)` steps.
    fn steps(&self, config: &WorkloadConfig) -> Vec<(usize, usize)> {
        match self {
            Schedule::RoundRobin => {
                let mut steps = Vec::new();
                for txn in 0..config.txns_per_session {
                    for session in 0..config.sessions {
                        steps.push((session, txn));
                    }
                }
                steps
            }
            Schedule::Shuffled { seed } => {
                let mut steps = Schedule::RoundRobin.steps(config);
                let mut rng = ChaCha8Rng::seed_from_u64(*seed ^ 0x5ced);
                steps.shuffle(&mut rng);
                // Restore per-session ordering: transaction i of a session
                // must run before transaction i+1 of the same session.
                let mut per_session: Vec<usize> = vec![0; config.sessions];
                steps
                    .into_iter()
                    .map(|(session, _)| {
                        let index = per_session[session];
                        per_session[session] += 1;
                        (session, index)
                    })
                    .collect()
            }
            Schedule::Explicit(steps) => steps.clone(),
        }
    }
}

/// Everything produced by one workload execution.
#[derive(Debug)]
pub struct RunOutput {
    /// The recorded execution history.
    pub history: History,
    /// Provenance stamped on the execution at record time (benchmark, seed,
    /// workload shape, store mode, recorder version). [`RunOutput::trace`]
    /// attaches it, plus the committed plan indices, to the trace it builds.
    pub provenance: Option<TraceMeta>,
    /// The transactions that committed, in execution order.
    pub committed: Vec<PlannedTxn>,
    /// The transactions that aborted, in execution order.
    pub aborted: Vec<PlannedTxn>,
    /// For each session, the plan indices of its transactions that committed,
    /// in session order. Together with the plan this lets a validation run
    /// map a committed transaction of the history back to the plan entry that
    /// produced it.
    pub committed_indices: Vec<Vec<usize>>,
    /// Assertion violations over the final state.
    pub violations: Vec<AssertionViolation>,
    /// Store counters.
    pub stats: RunStats,
    /// Divergences (only non-empty in [`StoreMode::Controlled`]).
    pub divergences: Vec<Divergence>,
}

impl RunOutput {
    /// The execution as a serializable [`Trace`]: the committed history plus
    /// the recorder-stamped provenance, with the committed plan indices a
    /// steered replay needs — ready to persist in a trace corpus. Built on
    /// demand so the runner's hot paths (validation replays, random
    /// exploration) never pay for a trace they discard.
    #[must_use]
    pub fn trace(&self) -> Trace {
        let mut trace = Trace::from_history(&self.history);
        trace.meta = self.provenance.clone().map(|mut meta| {
            meta.committed_plan_indices = Some(self.committed_indices.clone());
            meta
        });
        trace
    }
}

/// Runs `benchmark` under `config` against a fresh engine in `mode`,
/// interleaving sessions according to `schedule`.
#[must_use]
pub fn run(
    benchmark: Benchmark,
    config: &WorkloadConfig,
    mode: StoreMode,
    schedule: &Schedule,
) -> RunOutput {
    let engine = Engine::new(mode);
    run_on(&engine, benchmark, config, schedule)
}

/// Runs `benchmark` against an existing engine (whose mode the caller chose).
#[must_use]
pub fn run_on(
    engine: &Engine,
    benchmark: Benchmark,
    config: &WorkloadConfig,
    schedule: &Schedule,
) -> RunOutput {
    benchmark.setup(engine, config);
    // Stamp provenance before the workload runs, so traces of this execution
    // identify themselves (the corpus index is populated from the trace, not
    // re-derived from the caller's arguments).
    engine.stamp_provenance(TraceMeta {
        benchmark: benchmark.name().to_string(),
        seed: config.seed,
        sessions: config.sessions,
        txns_per_session: config.txns_per_session,
        scale: config.scale,
        isolation: engine.mode_label(),
        store_version: isopredict_store::VERSION.to_string(),
        committed_plan_indices: None,
    });
    let plans = benchmark.plan(config);
    let clients: Vec<_> = (0..config.sessions)
        .map(|s| engine.client(format!("session-{s}")))
        .collect();

    let mut committed = Vec::new();
    let mut aborted = Vec::new();
    let mut committed_indices = vec![Vec::new(); config.sessions];
    for (session, txn_index) in schedule.steps(config) {
        let Some(planned) = plans.get(session).and_then(|p| p.get(txn_index)) else {
            continue;
        };
        match benchmark.execute(planned, &clients[session]) {
            TxnResult::Committed => {
                committed.push(planned.clone());
                committed_indices[session].push(txn_index);
            }
            TxnResult::Aborted => aborted.push(planned.clone()),
        }
    }

    let violations = benchmark.assertions(engine, config, &committed);
    RunOutput {
        history: engine.history(),
        provenance: engine.provenance(),
        committed,
        aborted,
        committed_indices,
        violations,
        stats: engine.stats(),
        divergences: engine.divergences(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isopredict_history::serializability;
    use isopredict_store::IsolationLevel;

    #[test]
    fn round_robin_schedule_interleaves_sessions() {
        let config = WorkloadConfig::small(0);
        let steps = Schedule::RoundRobin.steps(&config);
        assert_eq!(steps.len(), 12);
        assert_eq!(steps[0], (0, 0));
        assert_eq!(steps[1], (1, 0));
        assert_eq!(steps[3], (0, 1));
    }

    #[test]
    fn shuffled_schedule_preserves_per_session_order() {
        let config = WorkloadConfig::large(0);
        let steps = Schedule::Shuffled { seed: 9 }.steps(&config);
        assert_eq!(steps.len(), 24);
        for session in 0..config.sessions {
            let indices: Vec<usize> = steps
                .iter()
                .filter(|(s, _)| *s == session)
                .map(|&(_, i)| i)
                .collect();
            let mut sorted = indices.clone();
            sorted.sort_unstable();
            assert_eq!(indices, sorted, "session {session} out of order");
            assert_eq!(indices.len(), config.txns_per_session);
        }
    }

    #[test]
    fn explicit_schedule_runs_only_the_listed_transactions() {
        let config = WorkloadConfig::small(0);
        let output = run(
            Benchmark::Smallbank,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::Explicit(vec![(0, 0), (1, 0)]),
        );
        assert_eq!(output.committed.len() + output.aborted.len(), 2);
    }

    #[test]
    fn run_outputs_carry_provenance_stamped_traces() {
        let config = WorkloadConfig::small(3);
        let output = run(
            Benchmark::Smallbank,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        let trace = output.trace();
        let meta = trace.meta.as_ref().expect("stamped at record time");
        assert_eq!(meta.benchmark, "Smallbank");
        assert_eq!(meta.seed, 3);
        assert_eq!(meta.sessions, config.sessions);
        assert_eq!(meta.txns_per_session, config.txns_per_session);
        assert_eq!(meta.scale, config.scale);
        assert_eq!(meta.isolation, "serializable-record");
        assert_eq!(meta.store_version, isopredict_store::VERSION);
        assert_eq!(
            meta.committed_plan_indices.as_ref(),
            Some(&output.committed_indices)
        );
        // The trace mirrors the committed history and is byte-deterministic.
        let rebuilt = trace.to_history().expect("recorder trace is valid");
        assert_eq!(
            rebuilt.committed_transactions().count(),
            output.history.committed_transactions().count()
        );
        let again = run(
            Benchmark::Smallbank,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        assert_eq!(trace.to_canonical_json(), again.trace().to_canonical_json());
    }

    #[test]
    fn observed_executions_are_serializable_for_every_benchmark() {
        for benchmark in Benchmark::all() {
            let config = WorkloadConfig::small(2);
            let output = run(
                benchmark,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            assert!(
                serializability::check(&output.history).is_serializable(),
                "{benchmark}"
            );
            assert!(output.violations.is_empty(), "{benchmark}");
        }
    }

    #[test]
    fn weak_executions_conform_to_their_isolation_level() {
        // Every level, through the isolation seam: the weak-random execution
        // must pass its own level's conformance checker (for snapshot
        // isolation this exercises the declared-write-set chooser).
        for benchmark in [Benchmark::Smallbank, Benchmark::Voter] {
            for level in IsolationLevel::ALL {
                let config = WorkloadConfig::small(5);
                let weak_run = run(
                    benchmark,
                    &config,
                    StoreMode::WeakRandom { level, seed: 5 },
                    &Schedule::RoundRobin,
                );
                assert!(
                    level.is_conformant(&weak_run.history),
                    "{benchmark} {level}"
                );
            }
        }
    }
}
