//! The Voter benchmark (Algorithm 3 of the paper).
//!
//! Callers vote for contestants, but each phone number may vote at most
//! [`VOTE_LIMIT`] times. The phone pool is tiny, so under a serializable
//! execution only the first vote per phone performs writes and every later
//! transaction is read-only — which is why the paper observes that no
//! unserializable execution can be *predicted* for Voter under causal
//! consistency, while read committed (and MonkeyDB's on-the-fly choices)
//! still exhibit anomalies (Section 7.2/7.3).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use isopredict_store::{Client, Engine};

use crate::assertions::AssertionViolation;
use crate::config::WorkloadConfig;
use crate::spec::{PlannedTxn, TxnResult};

/// Maximum number of votes per phone number.
pub const VOTE_LIMIT: i64 = 1;

/// Number of contestants (fixed, as in the original benchmark).
pub const NUM_CONTESTANTS: usize = 6;

/// A planned Voter transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoterTxn {
    /// A vote by `phone` for `contestant`.
    Vote {
        /// The caller's phone number (index into the phone pool).
        phone: usize,
        /// The contestant voted for.
        contestant: usize,
    },
    /// Read the leaderboard (all contestants' vote counts).
    Leaderboard,
}

fn votes_key(contestant: usize) -> String {
    format!("voter:votes:{contestant}")
}

fn phone_key(phone: usize) -> String {
    format!("voter:numvotes:{phone}")
}

fn contestant_key(contestant: usize) -> String {
    format!("voter:contestant:{contestant}")
}

const TOTAL_KEY: &str = "voter:total";

/// Loads contestants and zeroed counters.
pub fn setup(engine: &Engine, _config: &WorkloadConfig) {
    for contestant in 0..NUM_CONTESTANTS {
        engine.set_initial(
            &contestant_key(contestant),
            format!("contestant-{contestant}").into(),
        );
        engine.set_initial(&votes_key(contestant), 0i64.into());
    }
    engine.set_initial(TOTAL_KEY, 0i64.into());
}

/// Plans each session's transactions. The phone pool is a single number so
/// that, as in the paper's runs, only one transaction writes under a
/// serializable execution.
#[must_use]
pub fn plan(config: &WorkloadConfig) -> Vec<Vec<VoterTxn>> {
    (0..config.sessions)
        .map(|session| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(config.seed ^ (0x707e_0000 + session as u64) << 8);
            (0..config.txns_per_session)
                .map(|txn| {
                    if txn == 0 || rng.gen_bool(0.8) {
                        VoterTxn::Vote {
                            phone: 0,
                            contestant: rng.gen_range(0..NUM_CONTESTANTS),
                        }
                    } else {
                        VoterTxn::Leaderboard
                    }
                })
                .collect()
        })
        .collect()
}

/// The keys `txn` may write (over-declared for the vote-limit branch), fed
/// to the store's write-conflict accounting under snapshot isolation.
#[must_use]
pub fn write_set(txn: &VoterTxn) -> Vec<String> {
    match txn {
        VoterTxn::Vote { phone, contestant } => vec![
            phone_key(*phone),
            votes_key(*contestant),
            TOTAL_KEY.to_string(),
        ],
        VoterTxn::Leaderboard => Vec::new(),
    }
}

/// Executes one planned transaction.
pub fn execute(txn: &VoterTxn, client: &Client<'_>) -> TxnResult {
    let mut t = client.begin();
    t.declare_writes(write_set(txn));
    match txn {
        VoterTxn::Vote { phone, contestant } => {
            // Validate the contestant exists (a read, as in the SQL benchmark).
            let _ = t.get(&contestant_key(*contestant));
            let prior = t.get_int(&phone_key(*phone), 0);
            if prior >= VOTE_LIMIT {
                // Over the limit: no write (Algorithm 3 simply skips the put).
                t.commit();
                return TxnResult::Committed;
            }
            t.put(&phone_key(*phone), prior + 1);
            let votes = t.get_int(&votes_key(*contestant), 0);
            t.put(&votes_key(*contestant), votes + 1);
            let total = t.get_int(TOTAL_KEY, 0);
            t.put(TOTAL_KEY, total + 1);
            t.commit();
            TxnResult::Committed
        }
        VoterTxn::Leaderboard => {
            for contestant in 0..NUM_CONTESTANTS {
                let _ = t.get_int(&votes_key(contestant), 0);
            }
            let _ = t.get_int(TOTAL_KEY, 0);
            t.commit();
            TxnResult::Committed
        }
    }
}

/// MonkeyDB-style assertions: the per-phone limit is respected and the total
/// matches the sum of the contestants' counts.
#[must_use]
pub fn assertions(
    engine: &Engine,
    _config: &WorkloadConfig,
    _committed: &[PlannedTxn],
) -> Vec<AssertionViolation> {
    let mut violations = Vec::new();

    let phone_votes = engine.peek_int(&phone_key(0), 0);
    if phone_votes > VOTE_LIMIT {
        violations.push(AssertionViolation::new(
            "voter.vote-limit",
            format!("phone 0 recorded {phone_votes} votes (limit {VOTE_LIMIT})"),
        ));
    }

    let total = engine.peek_int(TOTAL_KEY, 0);
    let sum: i64 = (0..NUM_CONTESTANTS)
        .map(|c| engine.peek_int(&votes_key(c), 0))
        .sum();
    if total != sum {
        violations.push(AssertionViolation::new(
            "voter.total-consistency",
            format!("total counter is {total} but contestant votes sum to {sum}"),
        ));
    }
    if sum > VOTE_LIMIT {
        violations.push(AssertionViolation::new(
            "voter.too-many-votes",
            format!("{sum} votes were recorded for a single-phone pool (limit {VOTE_LIMIT})"),
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Benchmark, Schedule};
    use isopredict_store::{IsolationLevel, StoreMode};

    #[test]
    fn serializable_runs_have_exactly_one_writing_transaction() {
        for seed in 0..5 {
            let config = WorkloadConfig::small(seed);
            let output = run(
                Benchmark::Voter,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            assert!(output.violations.is_empty(), "seed {seed}");
            let writing = output
                .history
                .committed_transactions()
                .filter(|t| !t.is_read_only())
                .count();
            assert_eq!(writing, 1, "seed {seed}: Algorithm 3 writes exactly once");
        }
    }

    #[test]
    fn weak_random_execution_can_break_the_vote_limit() {
        let mut violated = false;
        for seed in 0..20 {
            let config = WorkloadConfig::small(seed);
            let output = run(
                Benchmark::Voter,
                &config,
                StoreMode::WeakRandom {
                    level: IsolationLevel::ReadCommitted,
                    seed,
                },
                &Schedule::RoundRobin,
            );
            if !output.violations.is_empty() {
                violated = true;
                break;
            }
        }
        assert!(
            violated,
            "weak execution never broke the vote-once invariant"
        );
    }
}
