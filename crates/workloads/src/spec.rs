//! The benchmark abstraction shared by the runner and the experiment harness.

use isopredict_store::{Client, Engine};

use crate::assertions::AssertionViolation;
use crate::config::WorkloadConfig;
use crate::{overdraft, smallbank, tpcc, voter, wikipedia};

/// The four OLTP-Bench programs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Checking/savings accounts (Smallbank).
    Smallbank,
    /// The vote-once benchmark of Algorithm 3 (Voter).
    Voter,
    /// Reduced TPC-C.
    Tpcc,
    /// Wikipedia page/revision traffic.
    Wikipedia,
    /// Sum-guarded withdrawals from per-customer account pairs — the
    /// canonical write-skew (snapshot isolation) scenario, beyond the
    /// paper's four programs.
    Overdraft,
}

impl Benchmark {
    /// The paper's four benchmarks, in the order its tables list them.
    #[must_use]
    pub fn all() -> [Benchmark; 4] {
        [
            Benchmark::Smallbank,
            Benchmark::Voter,
            Benchmark::Tpcc,
            Benchmark::Wikipedia,
        ]
    }

    /// Every benchmark: the paper's four plus the extensions grown since
    /// (currently [`Benchmark::Overdraft`], the write-skew scenario).
    #[must_use]
    pub fn extended() -> [Benchmark; 5] {
        [
            Benchmark::Smallbank,
            Benchmark::Voter,
            Benchmark::Tpcc,
            Benchmark::Wikipedia,
            Benchmark::Overdraft,
        ]
    }

    /// The benchmark's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Smallbank => "Smallbank",
            Benchmark::Voter => "Voter",
            Benchmark::Tpcc => "TPC-C",
            Benchmark::Wikipedia => "Wikipedia",
            Benchmark::Overdraft => "Overdraft",
        }
    }

    /// Loads the benchmark's initial data into the store.
    pub fn setup(&self, engine: &Engine, config: &WorkloadConfig) {
        match self {
            Benchmark::Smallbank => smallbank::setup(engine, config),
            Benchmark::Voter => voter::setup(engine, config),
            Benchmark::Tpcc => tpcc::setup(engine, config),
            Benchmark::Wikipedia => wikipedia::setup(engine, config),
            Benchmark::Overdraft => overdraft::setup(engine, config),
        }
    }

    /// Deterministically plans each session's transactions.
    #[must_use]
    pub fn plan(&self, config: &WorkloadConfig) -> Vec<Vec<PlannedTxn>> {
        match self {
            Benchmark::Smallbank => wrap(smallbank::plan(config), PlannedTxn::Smallbank),
            Benchmark::Voter => wrap(voter::plan(config), PlannedTxn::Voter),
            Benchmark::Tpcc => wrap(tpcc::plan(config), PlannedTxn::Tpcc),
            Benchmark::Wikipedia => wrap(wikipedia::plan(config), PlannedTxn::Wikipedia),
            Benchmark::Overdraft => wrap(overdraft::plan(config), PlannedTxn::Overdraft),
        }
    }

    /// Executes one planned transaction on a client session.
    pub fn execute(&self, planned: &PlannedTxn, client: &Client<'_>) -> TxnResult {
        match planned {
            PlannedTxn::Smallbank(txn) => smallbank::execute(txn, client),
            PlannedTxn::Voter(txn) => voter::execute(txn, client),
            PlannedTxn::Tpcc(txn) => tpcc::execute(txn, client),
            PlannedTxn::Wikipedia(txn) => wikipedia::execute(txn, client),
            PlannedTxn::Overdraft(txn) => overdraft::execute(txn, client),
        }
    }

    /// Evaluates the benchmark's MonkeyDB-style assertions over the final
    /// state, given the transactions that actually committed.
    #[must_use]
    pub fn assertions(
        &self,
        engine: &Engine,
        config: &WorkloadConfig,
        committed: &[PlannedTxn],
    ) -> Vec<AssertionViolation> {
        match self {
            Benchmark::Smallbank => smallbank::assertions(engine, config, committed),
            Benchmark::Voter => voter::assertions(engine, config, committed),
            Benchmark::Tpcc => tpcc::assertions(engine, config, committed),
            Benchmark::Wikipedia => wikipedia::assertions(engine, config, committed),
            Benchmark::Overdraft => overdraft::assertions(engine, config, committed),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Error parsing a [`Benchmark`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl std::fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown benchmark `{}` (expected smallbank, voter, tpcc, wikipedia, or overdraft)",
            self.0
        )
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl std::str::FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    /// Parses a benchmark by CLI name, case-insensitively; the single parser
    /// every binary shares, so aliases cannot drift between front ends.
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        match name.to_ascii_lowercase().as_str() {
            "smallbank" => Ok(Benchmark::Smallbank),
            "voter" => Ok(Benchmark::Voter),
            "tpcc" | "tpc-c" => Ok(Benchmark::Tpcc),
            "wikipedia" => Ok(Benchmark::Wikipedia),
            "overdraft" => Ok(Benchmark::Overdraft),
            other => Err(ParseBenchmarkError(other.to_string())),
        }
    }
}

fn wrap<T>(plans: Vec<Vec<T>>, constructor: fn(T) -> PlannedTxn) -> Vec<Vec<PlannedTxn>> {
    plans
        .into_iter()
        .map(|session| session.into_iter().map(constructor).collect())
        .collect()
}

/// A planned transaction of one of the benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedTxn {
    /// A Smallbank transaction.
    Smallbank(smallbank::SmallbankTxn),
    /// A Voter transaction.
    Voter(voter::VoterTxn),
    /// A TPC-C transaction.
    Tpcc(tpcc::TpccTxn),
    /// A Wikipedia transaction.
    Wikipedia(wikipedia::WikipediaTxn),
    /// An Overdraft transaction.
    Overdraft(overdraft::OverdraftTxn),
}

/// Result of executing one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnResult {
    /// The transaction committed.
    Committed,
    /// The transaction rolled back (application logic aborted it).
    Aborted,
}

impl TxnResult {
    /// Whether the transaction committed.
    #[must_use]
    pub fn is_committed(self) -> bool {
        matches!(self, TxnResult::Committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_match_the_paper() {
        let names: Vec<&str> = Benchmark::all().iter().map(Benchmark::name).collect();
        assert_eq!(names, vec!["Smallbank", "Voter", "TPC-C", "Wikipedia"]);
        assert_eq!(Benchmark::Tpcc.to_string(), "TPC-C");
    }

    #[test]
    fn benchmarks_parse_by_cli_name() {
        for benchmark in Benchmark::extended() {
            let parsed: Benchmark = benchmark
                .name()
                .to_ascii_lowercase()
                .parse()
                .expect("lowercased display name parses");
            assert_eq!(parsed, benchmark);
        }
        assert_eq!("tpcc".parse(), Ok(Benchmark::Tpcc));
        assert_eq!("TPC-C".parse(), Ok(Benchmark::Tpcc));
        let error = "mysql".parse::<Benchmark>().unwrap_err();
        assert!(error.to_string().contains("unknown benchmark `mysql`"));
    }

    #[test]
    fn plans_have_the_configured_shape() {
        let config = WorkloadConfig::small(1);
        for benchmark in Benchmark::extended() {
            let plan = benchmark.plan(&config);
            assert_eq!(plan.len(), config.sessions, "{benchmark}");
            for session_plan in &plan {
                assert_eq!(session_plan.len(), config.txns_per_session, "{benchmark}");
            }
        }
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let config = WorkloadConfig::small(42);
        for benchmark in Benchmark::all() {
            assert_eq!(
                benchmark.plan(&config),
                benchmark.plan(&config),
                "{benchmark}"
            );
        }
        let other = WorkloadConfig::small(43);
        // At least one benchmark plan should differ across seeds (all random
        // choices share the seed).
        let differs = Benchmark::all()
            .iter()
            .any(|b| b.plan(&config) != b.plan(&other));
        assert!(differs);
    }
}
